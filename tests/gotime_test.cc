/**
 * @file
 * time package tests on the virtual clock: Sleep, Timer (including the
 * Figure 12 zero-duration hazard), Stop/Reset, Ticker, After.
 */

#include <gtest/gtest.h>

#include <vector>

#include "golite/golite.hh"

namespace golite
{
namespace
{

using gotime::kMillisecond;

TEST(Time, SleepAdvancesVirtualClock)
{
    run([] {
        const auto t0 = gotime::now();
        gotime::sleep(7 * kMillisecond);
        EXPECT_EQ(gotime::now() - t0, 7 * kMillisecond);
    });
}

TEST(Time, TimerFiresOnce)
{
    int fires = 0;
    run([&] {
        gotime::Timer t = gotime::newTimer(5 * kMillisecond);
        t.c.recv();
        fires++;
        gotime::sleep(20 * kMillisecond);
        EXPECT_FALSE(t.c.tryRecv().has_value());
    });
    EXPECT_EQ(fires, 1);
}

TEST(Time, TimerDeliversFireTime)
{
    run([] {
        gotime::Timer t = gotime::newTimer(5 * kMillisecond);
        gotime::Time fired_at = t.c.recv().value;
        EXPECT_EQ(fired_at, 5 * kMillisecond);
    });
}

TEST(Time, ZeroDurationTimerFiresImmediately)
{
    // The Figure 12 hazard: NewTimer(0) signals its channel right
    // away, which made the buggy function return prematurely.
    run([] {
        gotime::Timer t = gotime::newTimer(0);
        gotime::Time fired_at = t.c.recv().value;
        EXPECT_EQ(fired_at, 0);
    });
}

TEST(Time, StopPreventsFiring)
{
    run([] {
        gotime::Timer t = gotime::newTimer(5 * kMillisecond);
        EXPECT_TRUE(t.stop());
        gotime::sleep(20 * kMillisecond);
        EXPECT_FALSE(t.c.tryRecv().has_value());
        EXPECT_FALSE(t.stop()); // second stop: already stopped
    });
}

TEST(Time, StopAfterFiringReturnsFalse)
{
    run([] {
        gotime::Timer t = gotime::newTimer(1 * kMillisecond);
        gotime::sleep(5 * kMillisecond);
        EXPECT_FALSE(t.stop());
        EXPECT_TRUE(t.c.tryRecv().has_value());
    });
}

TEST(Time, ResetReArms)
{
    run([] {
        gotime::Timer t = gotime::newTimer(5 * kMillisecond);
        EXPECT_TRUE(t.reset(10 * kMillisecond));
        gotime::Time fired_at = t.c.recv().value;
        EXPECT_EQ(fired_at, 10 * kMillisecond);
    });
}

TEST(Time, AfterIsATimerChannel)
{
    run([] {
        Chan<gotime::Time> done = gotime::after(3 * kMillisecond);
        EXPECT_EQ(done.recv().value, 3 * kMillisecond);
    });
}

TEST(Time, TickerTicksRepeatedly)
{
    std::vector<gotime::Time> ticks;
    run([&] {
        gotime::Ticker ticker = gotime::newTicker(10 * kMillisecond);
        for (int i = 0; i < 3; ++i)
            ticks.push_back(ticker.c.recv().value);
        ticker.stop();
        gotime::sleep(50 * kMillisecond);
        EXPECT_FALSE(ticker.c.tryRecv().has_value());
    });
    EXPECT_EQ(ticks, (std::vector<gotime::Time>{10 * kMillisecond,
                                                20 * kMillisecond,
                                                30 * kMillisecond}));
}

TEST(Time, SlowTickerReceiverDropsTicks)
{
    // Go semantics: ticks are delivered by non-blocking send on a
    // capacity-1 channel, so a slow receiver loses ticks rather than
    // queueing them.
    run([] {
        gotime::Ticker ticker = gotime::newTicker(10 * kMillisecond);
        gotime::sleep(55 * kMillisecond); // 5 ticks elapsed
        int received = 0;
        while (ticker.c.tryRecv().has_value())
            received++;
        EXPECT_EQ(received, 1); // only the buffered one survived
        ticker.stop();
    });
}

TEST(Time, ZeroPeriodTickerPanics)
{
    RunReport report = run([] { gotime::newTicker(0); });
    EXPECT_TRUE(report.panicked);
}

TEST(Time, TimersOrderAcrossGoroutines)
{
    std::vector<int> order;
    run([&] {
        WaitGroup wg;
        wg.add(2);
        go([&] {
            gotime::sleep(20 * kMillisecond);
            order.push_back(2);
            wg.done();
        });
        go([&] {
            gotime::sleep(10 * kMillisecond);
            order.push_back(1);
            wg.done();
        });
        wg.wait();
    });
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

} // namespace
} // namespace golite
