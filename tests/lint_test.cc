/**
 * @file
 * Tests for the anonymous-capture lint (the paper's Section 7
 * preliminary detector): the Figure 8 pattern must be flagged, the
 * privatized fix must not, and the generator's injected ground truth
 * must be recovered exactly.
 */

#include <gtest/gtest.h>

#include "scanner/generator.hh"
#include "scanner/lint.hh"

namespace golite::scanner
{
namespace
{

TEST(Lint, FlagsFigure8LoopCapture)
{
    // The docker-4951 shape, verbatim from the paper's Figure 8.
    auto findings = lintAnonymousCaptures(R"(
        func attach() {
            for i := 17; i <= 21; i++ {
                go func() {
                    apiVersion := fmt.Sprintf("v1.%d", i)
                    use(apiVersion)
                }()
            }
        }
    )");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].variable, "i");
    EXPECT_EQ(findings[0].line, 4u); // the `go` keyword's line
}

TEST(Lint, DoesNotFlagThePrivatizedFix)
{
    auto findings = lintAnonymousCaptures(R"(
        for i := 17; i <= 21; i++ {
            go func(i int) {
                use(i)
            }(i)
        }
    )");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, DoesNotFlagGoroutinesOutsideLoops)
{
    auto findings = lintAnonymousCaptures(R"(
        i := 3
        go func() { use(i) }()
    )");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, DoesNotFlagAfterTheLoopEnds)
{
    auto findings = lintAnonymousCaptures(R"(
        for i := 0; i < 3; i++ {
            work(i)
        }
        go func() { use(i) }()
    )");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, FlagsRangeLoopValueCapture)
{
    // The Figure 5 / WaitGroup idiom with a range loop.
    auto findings = lintAnonymousCaptures(R"(
        for _, p := range pm.plugins {
            go func() {
                restore(p)
            }()
        }
    )");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].variable, "p");
}

TEST(Lint, RangeFixWithParameterIsClean)
{
    auto findings = lintAnonymousCaptures(R"(
        for _, p := range pm.plugins {
            go func(p *plugin) {
                restore(p)
            }(p)
        }
    )");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, FlagsOuterLoopVarFromNestedLoop)
{
    auto findings = lintAnonymousCaptures(R"(
        for shard := 0; shard < n; shard++ {
            for try := 0; try < 3; try++ {
                go func(try int) {
                    replicate(shard, try)
                }(try)
            }
        }
    )");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].variable, "shard"); // try is shadowed
}

TEST(Lint, FlagsEachSiteOnce)
{
    auto findings = lintAnonymousCaptures(R"(
        for i := 0; i < 4; i++ {
            go func() {
                a := i
                b := i
                use(a, b, i)
            }()
        }
    )");
    EXPECT_EQ(findings.size(), 1u);
}

TEST(Lint, TwoVariablesTwoFindings)
{
    auto findings = lintAnonymousCaptures(R"(
        for k, v := range m {
            go func() {
                emit(k, v)
            }()
        }
    )");
    EXPECT_EQ(findings.size(), 2u);
}

TEST(Lint, GeneratedBaselineCorpusIsClean)
{
    // The generator's standard corpora privatize loop data, so the
    // lint must report nothing (no false positives at scale).
    for (const AppProfile &profile : goAppProfiles()) {
        auto findings =
            lintAnonymousCaptures(generateSource(profile, 11));
        EXPECT_TRUE(findings.empty()) << profile.name;
    }
}

TEST(Lint, RecoversInjectedGroundTruthExactly)
{
    AppProfile profile = goAppProfiles()[0];
    profile.sampleKloc = 15;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        const int buggy = 7, fixed = 9;
        auto findings = lintAnonymousCaptures(
            generateWithCaptureBugs(profile, seed, buggy, fixed));
        EXPECT_EQ(findings.size(), static_cast<size_t>(buggy))
            << "seed " << seed;
        for (const CaptureFinding &f : findings)
            EXPECT_EQ(f.variable, "idx");
    }
}

} // namespace
} // namespace golite::scanner
