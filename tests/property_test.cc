/**
 * @file
 * Property tests: runtime invariants swept across scheduling policy
 * × seed, plus a seeded random-pipeline fuzzer. These are the
 * "cannot happen under any schedule" guarantees the bug corpus'
 * *fixed* variants rely on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "corpus/bug.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/shrink.hh"
#include "golite/golite.hh"

namespace golite
{
namespace
{

using Params = std::tuple<SchedPolicy, uint64_t>;

class PolicySeed : public ::testing::TestWithParam<Params>
{
  protected:
    RunOptions
    options() const
    {
        RunOptions opts;
        opts.policy = std::get<0>(GetParam());
        opts.seed = std::get<1>(GetParam());
        return opts;
    }
};

TEST_P(PolicySeed, ChannelConservesValues)
{
    // Whatever the schedule: every sent value is received exactly
    // once, FIFO per sender, with no invention or duplication.
    std::vector<int> received;
    RunReport report = run([&] {
        Chan<int> ch = makeChan<int>(3);
        WaitGroup senders;
        senders.add(3);
        for (int s = 0; s < 3; ++s) {
            go([ch, s, &senders] {
                for (int i = 0; i < 5; ++i)
                    ch.send(s * 100 + i);
                senders.done();
            });
        }
        go([ch, &senders] {
            senders.wait();
            ch.close();
        });
        for (;;) {
            auto r = ch.recv();
            if (!r.ok)
                break;
            received.push_back(r.value);
        }
    }, options());
    ASSERT_EQ(received.size(), 15u);
    EXPECT_TRUE(report.clean());
    // Exactly-once delivery.
    std::vector<int> sorted = received;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
    // Per-sender FIFO.
    for (int s = 0; s < 3; ++s) {
        int last = -1;
        for (int v : received) {
            if (v / 100 != s)
                continue;
            EXPECT_GT(v, last);
            last = v;
        }
    }
}

TEST_P(PolicySeed, MutexMutualExclusionInvariant)
{
    int in_critical = 0;
    int max_in_critical = 0;
    RunReport report = run([&] {
        Mutex mu;
        WaitGroup wg;
        wg.add(5);
        for (int g = 0; g < 5; ++g) {
            go([&] {
                for (int i = 0; i < 6; ++i) {
                    mu.lock();
                    in_critical++;
                    max_in_critical =
                        std::max(max_in_critical, in_critical);
                    yield(); // invite a violation
                    yield();
                    in_critical--;
                    mu.unlock();
                }
                wg.done();
            });
        }
        wg.wait();
    }, options());
    EXPECT_EQ(max_in_critical, 1);
    EXPECT_TRUE(report.clean());
}

TEST_P(PolicySeed, RWMutexReadersWritersNeverOverlap)
{
    int readers = 0, writers = 0;
    bool violated = false;
    RunReport report = run([&] {
        RWMutex mu;
        WaitGroup wg;
        wg.add(6);
        for (int g = 0; g < 4; ++g) {
            go([&] {
                for (int i = 0; i < 4; ++i) {
                    mu.rlock();
                    readers++;
                    if (writers > 0)
                        violated = true;
                    yield();
                    readers--;
                    mu.runlock();
                }
                wg.done();
            });
        }
        for (int g = 0; g < 2; ++g) {
            go([&] {
                for (int i = 0; i < 3; ++i) {
                    mu.lock();
                    writers++;
                    if (readers > 0 || writers > 1)
                        violated = true;
                    yield();
                    writers--;
                    mu.unlock();
                }
                wg.done();
            });
        }
        wg.wait();
    }, options());
    EXPECT_FALSE(violated);
    EXPECT_TRUE(report.clean());
}

TEST_P(PolicySeed, WaitGroupWaitImpliesAllDone)
{
    int done_count = 0;
    int seen_at_wait = -1;
    run([&] {
        WaitGroup wg;
        wg.add(7);
        for (int g = 0; g < 7; ++g) {
            go([&] {
                yield();
                done_count++;
                wg.done();
            });
        }
        wg.wait();
        seen_at_wait = done_count;
    }, options());
    EXPECT_EQ(seen_at_wait, 7);
}

TEST_P(PolicySeed, PipePreservesByteStream)
{
    std::string assembled;
    RunReport report = run([&] {
        auto [reader, writer] = goio::makePipe();
        go([w = writer]() mutable {
            for (int i = 0; i < 8; ++i)
                w.write(std::string(1 + i % 3, 'a' + i));
            w.close();
        });
        std::string chunk;
        for (;;) {
            auto res = reader.read(chunk, 2); // ragged reads
            assembled += chunk;
            if (!res.ok())
                break;
        }
    }, options());
    std::string expected;
    for (int i = 0; i < 8; ++i)
        expected += std::string(1 + i % 3, 'a' + i);
    EXPECT_EQ(assembled, expected);
    EXPECT_TRUE(report.clean());
}

TEST_P(PolicySeed, RandomPipelineFuzz)
{
    // Build a random (but correct-by-construction) staged pipeline
    // from the test seed: K stages, each a fan of workers connected
    // by channels of random capacity; assert completion, value
    // conservation, and zero leaks — under every scheduling policy.
    const uint64_t seed = std::get<1>(GetParam());
    Rng topology(seed * 7919 + 13);
    const int stages = 2 + static_cast<int>(topology.below(3));
    std::vector<int> widths, caps;
    for (int s = 0; s < stages; ++s) {
        widths.push_back(1 + static_cast<int>(topology.below(3)));
        caps.push_back(static_cast<int>(topology.below(4)));
    }
    const int items = 12 + static_cast<int>(topology.below(12));

    long long out_sum = 0;
    int out_count = 0;
    RunReport report = run([&] {
        std::vector<Chan<int>> links;
        for (int s = 0; s <= stages; ++s)
            links.push_back(makeChan<int>(caps[s % caps.size()]));

        // Source.
        go("source", [first = links[0], items] {
            for (int i = 1; i <= items; ++i)
                first.send(i);
            first.close();
        });

        // Stages: each fans out `width` workers that forward +1.
        for (int s = 0; s < stages; ++s) {
            auto in = links[s];
            auto out = links[s + 1];
            auto closer_wg = std::make_shared<WaitGroup>();
            closer_wg->add(widths[s]);
            for (int w = 0; w < widths[s]; ++w) {
                go("stage", [in, out, closer_wg] {
                    for (;;) {
                        auto r = in.recv();
                        if (!r.ok)
                            break;
                        out.send(r.value + 1);
                    }
                    closer_wg->done();
                });
            }
            go("stage-closer", [out, closer_wg] {
                closer_wg->wait();
                out.close();
            });
        }

        // Sink.
        for (;;) {
            auto r = links[stages].recv();
            if (!r.ok)
                break;
            out_sum += r.value;
            out_count++;
        }
    }, options());

    EXPECT_EQ(out_count, items);
    const long long base = 1LL * items * (items + 1) / 2;
    EXPECT_EQ(out_sum, base + 1LL * stages * items);
    EXPECT_TRUE(report.clean()) << report.describe();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicySeed,
    ::testing::Combine(::testing::Values(SchedPolicy::Random,
                                         SchedPolicy::Fifo,
                                         SchedPolicy::Lifo,
                                         SchedPolicy::Pct),
                       ::testing::Range<uint64_t>(0, 6)),
    [](const ::testing::TestParamInfo<Params> &info) {
        return std::string(schedPolicyName(std::get<0>(info.param))) +
               "_seed" + std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------------------
// Shrinker property: for any fuzzer-found bug trace, the shrunk
// trace (a) still triggers the bug, and (b) is 1-removal minimal —
// deleting any single remaining decision loses the bug. Swept over
// several schedule-dependent kernels and fuzz seeds.

using ShrinkParams = std::tuple<const char *, uint64_t>;

class ShrinkMinimality
    : public ::testing::TestWithParam<ShrinkParams>
{
};

TEST_P(ShrinkMinimality, ShrunkTraceIsLocallyMinimal)
{
    const auto [id, fuzz_seed] = GetParam();
    const corpus::BugCase *bug = corpus::findBug(id);
    ASSERT_NE(bug, nullptr);

    fuzz::FuzzOptions fo;
    fo.maxExecutions = 1500;
    fo.fuzzSeed = fuzz_seed;
    fo.workers = 1;
    const fuzz::FuzzResult found =
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo);
    ASSERT_TRUE(found.bugFound) << id;

    const fuzz::ShrinkResult shrunk = fuzz::shrinkKernelTrace(
        *bug, corpus::Variant::Buggy, found.bugTrace);
    ASSERT_TRUE(shrunk.stillBug) << id;
    ASSERT_TRUE(shrunk.locallyMinimal) << id;

    auto triggers = [&](const ScheduleTrace &t) {
        RunOptions ro;
        ro.policy = SchedPolicy::Random;
        ro.replayTrace = &t;
        ro.replayStrict = false;
        return bug->run(corpus::Variant::Buggy, ro).manifested;
    };

    // (a) the shrunk trace still triggers.
    EXPECT_TRUE(triggers(shrunk.trace)) << id;

    // (b) removing any single decision loses the bug.
    for (size_t i = 0; i < shrunk.trace.size(); ++i) {
        ScheduleTrace cut;
        cut.decisions = shrunk.trace.decisions;
        cut.decisions.erase(cut.decisions.begin() +
                            static_cast<long>(i));
        EXPECT_FALSE(triggers(cut))
            << id << ": decision " << i << " of "
            << shrunk.trace.size() << " is removable";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ShrinkMinimality,
    ::testing::Combine(::testing::Values("cockroach-6111",
                                         "kubernetes-41113",
                                         "etcd-5027", "etcd-6873"),
                       ::testing::Values<uint64_t>(1, 2)),
    [](const ::testing::TestParamInfo<ShrinkParams> &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_f" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace golite
