/**
 * @file
 * Channel semantics tests: buffered/unbuffered transfer, FIFO order,
 * close rules (the panic rules behind the paper's misuse bugs), nil
 * channels, and try operations.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "golite/golite.hh"

namespace golite
{
namespace
{

TEST(Chan, UnbufferedTransfersValue)
{
    int got = 0;
    RunReport report = run([&] {
        Chan<int> ch = makeChan<int>();
        go([ch] { ch.send(42); });
        got = ch.recv().value;
    });
    EXPECT_EQ(got, 42);
    EXPECT_TRUE(report.clean());
}

TEST(Chan, UnbufferedSendBlocksUntilReceive)
{
    std::vector<std::string> trace;
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    run([&] {
        Chan<Unit> ch = makeChan<Unit>();
        go([&, ch] {
            trace.push_back("sending");
            ch.send(Unit{});
            trace.push_back("sent");
        });
        yield(); // let the sender park
        trace.push_back("receiving");
        ch.recv();
        yield(); // let the sender finish
    }, options);
    EXPECT_EQ(trace, (std::vector<std::string>{"sending", "receiving",
                                               "sent"}));
}

TEST(Chan, BufferedSendDoesNotBlockUntilFull)
{
    RunReport report = run([] {
        Chan<int> ch = makeChan<int>(2);
        ch.send(1);
        ch.send(2); // would deadlock if capacity were ignored
        EXPECT_EQ(ch.len(), 2u);
        EXPECT_EQ(ch.recv().value, 1);
        EXPECT_EQ(ch.recv().value, 2);
    });
    EXPECT_TRUE(report.clean());
}

TEST(Chan, BufferedBlocksWhenFull)
{
    RunReport report = run([] {
        Chan<int> ch = makeChan<int>(1);
        ch.send(1);
        ch.send(2); // full: blocks forever -> global deadlock
    });
    EXPECT_TRUE(report.globalDeadlock);
}

TEST(Chan, FifoOrderThroughBuffer)
{
    std::vector<int> got;
    run([&] {
        Chan<int> ch = makeChan<int>(4);
        go([ch] {
            for (int i = 0; i < 8; ++i)
                ch.send(i);
            ch.close();
        });
        for (;;) {
            auto r = ch.recv();
            if (!r.ok)
                break;
            got.push_back(r.value);
        }
    });
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Chan, RecvFromClosedReturnsNotOk)
{
    run([] {
        Chan<int> ch = makeChan<int>(1);
        ch.send(7);
        ch.close();
        auto first = ch.recv();
        EXPECT_TRUE(first.ok); // drains the buffer first
        EXPECT_EQ(first.value, 7);
        auto second = ch.recv();
        EXPECT_FALSE(second.ok);
        EXPECT_EQ(second.value, 0);
    });
}

TEST(Chan, CloseWakesAllBlockedReceivers)
{
    int woken = 0;
    RunReport report = run([&] {
        Chan<int> ch = makeChan<int>();
        for (int i = 0; i < 3; ++i) {
            go([&, ch] {
                auto r = ch.recv();
                if (!r.ok)
                    woken++;
            });
        }
        for (int i = 0; i < 10; ++i)
            yield();
        ch.close();
    });
    EXPECT_EQ(woken, 3);
    EXPECT_TRUE(report.clean());
}

TEST(Chan, SendOnClosedPanics)
{
    RunReport report = run([] {
        Chan<int> ch = makeChan<int>(1);
        ch.close();
        ch.send(1);
    });
    EXPECT_TRUE(report.panicked);
    EXPECT_EQ(report.panicMessage, "send on closed channel");
}

TEST(Chan, CloseOfClosedPanics)
{
    // The exact Docker#24007 rule (Figure 10).
    RunReport report = run([] {
        Chan<int> ch = makeChan<int>(1);
        ch.close();
        ch.close();
    });
    EXPECT_TRUE(report.panicked);
    EXPECT_EQ(report.panicMessage, "close of closed channel");
}

TEST(Chan, CloseWhileSenderBlockedPanics)
{
    RunReport report = run([] {
        Chan<int> ch = makeChan<int>();
        go([ch] { ch.send(1); }); // parks: no receiver
        yield();
        ch.close();
        yield();
    });
    EXPECT_TRUE(report.panicked);
    EXPECT_EQ(report.panicMessage, "send on closed channel");
}

TEST(Chan, CloseOfNilPanics)
{
    RunReport report = run([] {
        Chan<int> nil_chan;
        nil_chan.close();
    });
    EXPECT_TRUE(report.panicked);
    EXPECT_EQ(report.panicMessage, "close of nil channel");
}

TEST(Chan, NilChannelBlocksForever)
{
    RunReport report = run([] {
        Chan<int> nil_chan;
        nil_chan.recv();
    });
    EXPECT_TRUE(report.globalDeadlock);
}

TEST(Chan, NilChannelSendLeaksGoroutine)
{
    RunReport report = run([] {
        Chan<int> nil_chan;
        go("nil-sender", [nil_chan] { nil_chan.send(1); });
        yield();
    });
    ASSERT_EQ(report.leaked.size(), 1u);
    EXPECT_EQ(report.leaked[0].reason, WaitReason::ChanSendNil);
}

TEST(Chan, TrySendTryRecv)
{
    run([] {
        Chan<int> ch = makeChan<int>(1);
        EXPECT_FALSE(ch.tryRecv().has_value());
        EXPECT_TRUE(ch.trySend(5));
        EXPECT_FALSE(ch.trySend(6)); // full
        auto r = ch.tryRecv();
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->value, 5);
        EXPECT_TRUE(r->ok);
    });
}

TEST(Chan, TryRecvSeesClosed)
{
    run([] {
        Chan<int> ch = makeChan<int>();
        ch.close();
        auto r = ch.tryRecv();
        ASSERT_TRUE(r.has_value());
        EXPECT_FALSE(r->ok);
    });
}

TEST(Chan, TrySendHandsOffToBlockedReceiver)
{
    int got = 0;
    RunOptions options;
    options.policy = SchedPolicy::Fifo; // the receiver parks first
    run([&] {
        Chan<int> ch = makeChan<int>(); // unbuffered
        go([&, ch] { got = ch.recv().value; });
        yield(); // receiver parks
        EXPECT_TRUE(ch.trySend(9));
    }, options);
    EXPECT_EQ(got, 9);
}

TEST(Chan, BufferRefillsFromBlockedSender)
{
    std::vector<int> got;
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    run([&] {
        Chan<int> ch = makeChan<int>(1);
        ch.send(1);
        go([ch] { ch.send(2); }); // parks: buffer full
        yield();
        got.push_back(ch.recv().value); // frees a slot; 2 moves in
        got.push_back(ch.recv().value);
    }, options);
    EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Chan, ManyProducersOneConsumer)
{
    int sum = 0;
    RunReport report = run([&] {
        Chan<int> ch = makeChan<int>(3);
        WaitGroup wg;
        wg.add(10);
        for (int i = 1; i <= 10; ++i) {
            go([ch, i, &wg] {
                ch.send(i);
                wg.done();
            });
        }
        go([ch, &wg] {
            wg.wait();
            ch.close();
        });
        for (;;) {
            auto r = ch.recv();
            if (!r.ok)
                break;
            sum += r.value;
        }
    });
    EXPECT_EQ(sum, 55);
    EXPECT_TRUE(report.clean());
}

TEST(Chan, MoveOnlyElements)
{
    std::string got;
    run([&] {
        Chan<std::unique_ptr<std::string>> ch =
            makeChan<std::unique_ptr<std::string>>(1);
        ch.send(std::make_unique<std::string>("payload"));
        got = *ch.recv().value;
    });
    EXPECT_EQ(got, "payload");
}

class ChanSeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ChanSeedSweep, PingPongCompletesUnderAnySchedule)
{
    RunOptions options;
    options.seed = GetParam();
    int rounds = 0;
    RunReport report = run([&] {
        Chan<int> ping = makeChan<int>();
        Chan<int> pong = makeChan<int>();
        go([=] {
            for (int i = 0; i < 10; ++i) {
                int v = ping.recv().value;
                pong.send(v + 1);
            }
        });
        for (int i = 0; i < 10; ++i) {
            ping.send(i);
            rounds += pong.recv().value - i;
        }
    }, options);
    EXPECT_EQ(rounds, 10);
    EXPECT_TRUE(report.clean());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChanSeedSweep,
                         ::testing::Range<uint64_t>(0, 16));

} // namespace
} // namespace golite
