/**
 * @file
 * Unoptimized full-vector-clock reference race detector.
 *
 * Test-only oracle for the differential test: the same
 * happens-before algorithm as race::Detector — bounded ring history,
 * per-object report budget, (gids, kinds) report dedup — written with
 * naive containers (std::map clocks and shadow, std::vector cells,
 * std::set combos), no epoch fast paths, no caches, no truncation,
 * no slot recycling. Every access performs the full scan against
 * full-width vector clocks keyed by raw goroutine id. The one
 * lifecycle event it does mirror is MemFree: the optimized detector
 * erases a freed address's shadow history (and with it the address's
 * report budget) and sync clock, so the reference must too or the two
 * would diverge whenever the allocator reuses an address. Any
 * report-sequence divergence from the optimized detector on the same
 * run is a bug in one of them.
 */

#ifndef GOLITE_TESTS_REF_DETECTOR_HH
#define GOLITE_TESTS_REF_DETECTOR_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "race/detector.hh"
#include "runtime/events.hh"

namespace golite::race
{

class RefDetector : public Subscriber
{
  public:
    explicit RefDetector(size_t shadow_depth = 4,
                         size_t report_limit = 4)
        : depth_(shadow_depth == 0 ? 1 : shadow_depth),
          reportLimit_(report_limit)
    {
    }

    EventMask
    eventMask() const override
    {
        return eventBit(EventKind::GoSpawn) |
               eventBit(EventKind::SyncAcquire) |
               eventBit(EventKind::SyncRelease) |
               eventBit(EventKind::MemRead) |
               eventBit(EventKind::MemWrite) |
               eventBit(EventKind::MemFree);
    }

    void
    onEvent(const RuntimeEvent &ev) override
    {
        switch (ev.kind) {
          case EventKind::GoSpawn:
            goroutineCreated(ev.a, ev.gid);
            break;
          case EventKind::SyncAcquire:
            acquire(ev.obj, ev.gid);
            break;
          case EventKind::SyncRelease:
            release(ev.obj, ev.gid);
            break;
          case EventKind::MemFree:
            shadow_.erase(ev.obj);
            syncClocks_.erase(ev.obj);
            break;
          default:
            break; // MemRead/MemWrite arrive via onMemAccess
        }
    }

    void
    onMemAccess(const void *addr, const char *label, uint64_t gid,
                bool is_write) override
    {
        access(addr, label, gid, is_write);
    }

    const std::vector<RaceReport> &reports() const { return reports_; }

  private:
    void
    goroutineCreated(uint64_t parent, uint64_t child)
    {
        if (parent != 0) {
            std::map<uint64_t, uint64_t> child_clock = clockOf(parent);
            child_clock[child] = 1;
            clocks_[child] = std::move(child_clock);
            clockOf(parent)[parent]++;
        } else {
            clockOf(child);
        }
    }

    void
    acquire(const void *sync_obj, uint64_t gid)
    {
        if (gid == 0)
            return;
        auto it = syncClocks_.find(sync_obj);
        if (it == syncClocks_.end())
            return;
        std::map<uint64_t, uint64_t> &vc = clockOf(gid);
        for (const auto &[g, t] : it->second)
            if (t > vc[g])
                vc[g] = t;
    }

    void
    release(const void *sync_obj, uint64_t gid)
    {
        if (gid == 0)
            return;
        std::map<uint64_t, uint64_t> &vc = clockOf(gid);
        std::map<uint64_t, uint64_t> &sync = syncClocks_[sync_obj];
        for (const auto &[g, t] : vc)
            if (t > sync[g])
                sync[g] = t;
        vc[gid]++;
    }

    struct Cell
    {
        uint64_t gid;
        bool isWrite;
        uint64_t epoch;
    };

    struct Shadow
    {
        std::vector<Cell> cells; ///< ring, same slot order as optimized
        size_t next = 0;
        std::set<uint64_t> combos;
    };

    std::map<uint64_t, uint64_t> &
    clockOf(uint64_t gid)
    {
        std::map<uint64_t, uint64_t> &vc = clocks_[gid];
        if (vc[gid] == 0)
            vc[gid] = 1;
        return vc;
    }

    void
    access(const void *addr, const char *label, uint64_t gid,
           bool is_write)
    {
        if (gid == 0)
            return;
        Shadow &shadow = shadow_[addr];
        std::map<uint64_t, uint64_t> &vc = clockOf(gid);

        // Full scan, mirroring Detector::scanAndRecord slot for slot.
        for (const Cell &cell : shadow.cells) {
            if (cell.gid == gid)
                continue;
            if (!cell.isWrite && !is_write)
                continue;
            auto seen = vc.find(cell.gid);
            if (cell.epoch <= (seen == vc.end() ? 0 : seen->second))
                continue;
            if (shadow.combos.size() >= reportLimit_)
                break;
            const uint64_t key =
                comboKey(cell.gid, cell.isWrite, gid, is_write);
            if (shadow.combos.count(key))
                continue;
            shadow.combos.insert(key);
            reports_.push_back(RaceReport{label, addr, cell.gid,
                                          cell.isWrite, gid,
                                          is_write});
            break;
        }

        const Cell mine{gid, is_write, vc[gid]};
        if (shadow.cells.size() < depth_) {
            shadow.cells.push_back(mine);
        } else {
            shadow.cells[shadow.next] = mine;
            if (++shadow.next == depth_)
                shadow.next = 0;
        }
    }

    size_t depth_;
    size_t reportLimit_;
    std::map<uint64_t, std::map<uint64_t, uint64_t>> clocks_;
    std::map<const void *, std::map<uint64_t, uint64_t>> syncClocks_;
    std::map<const void *, Shadow> shadow_;
    std::vector<RaceReport> reports_;
};

} // namespace golite::race

#endif // GOLITE_TESTS_REF_DETECTOR_HH
