/**
 * @file
 * ExecMode::Parallel: the M:N work-stealing runtime and the sharded
 * race detector.
 *
 * Four concerns:
 *  - runtime semantics survive parallel execution (channels, locks,
 *    select, timers, deadlock/leak/panic reporting);
 *  - the option combinations parallel mode cannot honor are rejected
 *    loudly, including non-parallel-safe mem-lane subscribers and the
 *    thread_local detector slots (the sweep regression);
 *  - race::Sharded is verdict-compatible with race::Detector in
 *    deterministic mode and actually detects the corpus's races under
 *    real parallel interleaving;
 *  - deterministic-mode runs stay bit-identical (fingerprints and
 *    trace bytes) when parallel runs execute between and around them
 *    — the record/replay oracle is unaffected by the new mode.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "base/panic.hh"
#include "channel/chan.hh"
#include "channel/select.hh"
#include "corpus/bug.hh"
#include "gotime/time.hh"
#include "parallel/sweep.hh"
#include "race/detector.hh"
#include "race/shared.hh"
#include "race/sharded.hh"
#include "runtime/scheduler.hh"
#include "sync/mutex.hh"
#include "sync/waitgroup.hh"

namespace
{

using namespace golite;

RunOptions
parallelOptions(uint64_t seed, unsigned threads = 4)
{
    RunOptions options;
    options.execMode = ExecMode::Parallel;
    options.parallelThreads = threads;
    options.seed = seed;
    return options;
}

} // namespace

// --- Runtime semantics under M:N execution ---------------------------

TEST(ParallelMode, RunsManyGoroutinesToCompletion)
{
    constexpr int kGoroutines = 200;
    RunReport report = run(
        [] {
            auto done = makeChan<int>(kGoroutines);
            for (int i = 0; i < kGoroutines; ++i) {
                go([done, i] { done.send(i); });
            }
            std::set<int> seen;
            for (int i = 0; i < kGoroutines; ++i)
                seen.insert(done.recv().value);
            if (seen.size() != size_t{kGoroutines})
                goPanic("lost a goroutine's send");
        },
        parallelOptions(1));
    EXPECT_TRUE(report.completed) << report.describe();
    EXPECT_EQ(report.goroutinesCreated, kGoroutines + 1u);
    EXPECT_TRUE(report.leaked.empty());
}

TEST(ParallelMode, UnbufferedChannelHandoffs)
{
    RunReport report = run(
        [] {
            auto ch = makeChan<int>();
            go([ch] {
                for (int i = 0; i < 500; ++i)
                    ch.send(i);
                ch.close();
            });
            int expected = 0;
            for (;;) {
                auto [v, ok] = ch.recv();
                if (!ok)
                    break;
                if (v != expected++)
                    goPanic("handoff out of order");
            }
            if (expected != 500)
                goPanic("dropped sends");
        },
        parallelOptions(7));
    EXPECT_TRUE(report.completed) << report.describe();
}

TEST(ParallelMode, MutexProtectedCounterIsExact)
{
    constexpr int kWorkers = 16;
    constexpr int kIncrements = 200;
    RunReport report = run(
        [] {
            auto mu = std::make_shared<Mutex>();
            auto counter = std::make_shared<int>(0);
            auto wg = std::make_shared<WaitGroup>();
            wg->add(kWorkers);
            for (int w = 0; w < kWorkers; ++w) {
                go([mu, counter, wg] {
                    for (int i = 0; i < kIncrements; ++i) {
                        mu->lock();
                        ++*counter;
                        mu->unlock();
                    }
                    wg->done();
                });
            }
            wg->wait();
            if (*counter != kWorkers * kIncrements)
                goPanic("lost increments under the mutex");
        },
        parallelOptions(3, 8));
    EXPECT_TRUE(report.completed) << report.describe();
}

TEST(ParallelMode, SelectChoosesReadyCase)
{
    RunReport report = run(
        [] {
            auto a = makeChan<int>();
            auto b = makeChan<int>();
            go([a] { a.send(1); });
            go([b] { b.send(2); });
            int got = 0;
            for (int i = 0; i < 2; ++i) {
                Select sel;
                sel.recv(a, std::function<void(int, bool)>(
                                [&](int v, bool) { got += v; }));
                sel.recv(b, std::function<void(int, bool)>(
                                [&](int v, bool) { got += v; }));
                sel.run();
            }
            if (got != 3)
                goPanic("select lost a message");
        },
        parallelOptions(11));
    EXPECT_TRUE(report.completed) << report.describe();
}

TEST(ParallelMode, TimersAdvanceTheVirtualClock)
{
    RunReport report = run(
        [] {
            auto wg = std::make_shared<WaitGroup>();
            wg->add(8);
            for (int i = 1; i <= 8; ++i) {
                go([wg, i] {
                    gotime::sleep(i * 1'000'000); // i ms, virtual
                    wg->done();
                });
            }
            wg->wait();
        },
        parallelOptions(5));
    EXPECT_TRUE(report.completed) << report.describe();
    EXPECT_GE(report.finalTimeNs, 8'000'000);
}

TEST(ParallelMode, GlobalDeadlockIsDetected)
{
    RunReport report = run(
        [] {
            auto ch = makeChan<int>();
            ch.recv(); // no sender will ever appear
        },
        parallelOptions(2));
    EXPECT_TRUE(report.globalDeadlock) << report.describe();
    EXPECT_FALSE(report.completed);
}

TEST(ParallelMode, LeakedGoroutineReportedAtExit)
{
    RunReport report = run(
        [] {
            auto ch = makeChan<int>();
            go("leaker", [ch] { ch.recv(); });
            yield();
        },
        parallelOptions(4));
    ASSERT_EQ(report.leaked.size(), 1u) << report.describe();
    EXPECT_EQ(report.leaked[0].label, "leaker");
    EXPECT_EQ(report.leaked[0].reason, WaitReason::ChanRecv);
}

TEST(ParallelMode, PanicAbortsTheRun)
{
    RunReport report = run(
        [] {
            go([] { goPanic("boom from a worker"); });
            auto ch = makeChan<int>();
            ch.recv();
        },
        parallelOptions(6));
    EXPECT_TRUE(report.panicked);
    EXPECT_EQ(report.panicMessage, "boom from a worker");
}

TEST(ParallelMode, SameSeedIsReproducibleForInvariantOutcomes)
{
    // Parallel schedules are not deterministic, but outcome-level
    // facts that do not depend on interleaving must hold every run.
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        RunReport report = run(
            [] {
                auto wg = std::make_shared<WaitGroup>();
                wg->add(32);
                for (int i = 0; i < 32; ++i)
                    go([wg] { wg->done(); });
                wg->wait();
            },
            parallelOptions(seed));
        EXPECT_TRUE(report.completed) << "seed " << seed;
        EXPECT_EQ(report.goroutinesCreated, 33u);
    }
}

// --- Option validation ----------------------------------------------

TEST(ParallelMode, RejectsScheduleTraceRecording)
{
    ScheduleTrace trace;
    RunOptions options = parallelOptions(1);
    options.recordTrace = &trace;
    EXPECT_THROW(run([] {}, options), std::logic_error);
}

TEST(ParallelMode, RejectsChoosers)
{
    RunOptions options = parallelOptions(1);
    options.chooser = [](size_t) { return size_t{0}; };
    EXPECT_THROW(run([] {}, options), std::logic_error);
}

TEST(ParallelMode, RejectsCollectTrace)
{
    RunOptions options = parallelOptions(1);
    options.collectTrace = true;
    EXPECT_THROW(run([] {}, options), std::logic_error);
}

TEST(ParallelMode, RejectsNonParallelSafeMemLaneSubscriber)
{
    race::Detector detector;
    RunOptions options = parallelOptions(1);
    options.subscribers.push_back(&detector);
    EXPECT_THROW(run([] {}, options), std::logic_error);
}

TEST(ParallelMode, AcceptsShardedDetector)
{
    race::Sharded sharded;
    RunOptions options = parallelOptions(1);
    options.subscribers.push_back(&sharded);
    RunReport report = run([] { go([] {}); }, options);
    EXPECT_TRUE(report.completed);
}

TEST(ParallelMode, ThreadLocalDetectorSlotsRejectedInsideParallelRun)
{
    // The sweep regression: thread_local detector slots are per OS
    // thread, but a parallel run's goroutines migrate across threads.
    bool race_slot_threw = false;
    bool waitgraph_slot_threw = false;
    RunReport report = run(
        [&] {
            try {
                parallel::threadLocalDetector();
            } catch (const std::logic_error &) {
                race_slot_threw = true;
            }
            try {
                parallel::threadLocalWaitgraphDetector();
            } catch (const std::logic_error &) {
                waitgraph_slot_threw = true;
            }
        },
        parallelOptions(1));
    EXPECT_TRUE(report.completed);
    EXPECT_TRUE(race_slot_threw);
    EXPECT_TRUE(waitgraph_slot_threw);
}

TEST(ParallelMode, ThreadLocalDetectorStillWorksSerially)
{
    race::Detector &d = parallel::threadLocalDetector();
    EXPECT_EQ(d.reports().size(), 0u);
}

// --- The sharded race detector ---------------------------------------

TEST(ShardedDetector, DetectsARaceUnderParallelExecution)
{
    // An unsynchronized counter: two goroutines, no happens-before
    // edge. A bounded seed batch must expose it (early exit on first
    // detection).
    bool detected = false;
    for (uint64_t seed = 1; seed <= 20 && !detected; ++seed) {
        race::Sharded sharded;
        RunOptions options = parallelOptions(seed);
        options.subscribers.push_back(&sharded);
        run(
            [] {
                auto counter =
                    std::make_shared<race::Shared<int>>("pm.counter");
                auto wg = std::make_shared<WaitGroup>();
                wg->add(2);
                for (int i = 0; i < 2; ++i) {
                    go([counter, wg] {
                        for (int k = 0; k < 50; ++k)
                            counter->update([](int &v) { ++v; });
                        wg->done();
                    });
                }
                wg->wait();
            },
            options);
        detected = sharded.racedOn("pm.counter");
    }
    EXPECT_TRUE(detected);
}

TEST(ShardedDetector, NoFalsePositiveOnMutexProtectedCounter)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        race::Sharded sharded;
        RunOptions options = parallelOptions(seed);
        options.subscribers.push_back(&sharded);
        RunReport report = run(
            [] {
                auto counter =
                    std::make_shared<race::Shared<int>>("pm.locked");
                auto mu = std::make_shared<Mutex>();
                auto wg = std::make_shared<WaitGroup>();
                wg->add(4);
                for (int i = 0; i < 4; ++i) {
                    go([counter, mu, wg] {
                        for (int k = 0; k < 25; ++k) {
                            mu->lock();
                            counter->update([](int &v) { ++v; });
                            mu->unlock();
                        }
                        wg->done();
                    });
                }
                wg->wait();
            },
            options);
        EXPECT_TRUE(report.raceMessages.empty())
            << "seed " << seed << ": " << report.raceMessages[0];
    }
}

TEST(ShardedDetector, NoFalsePositiveOnChannelHandoff)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        race::Sharded sharded;
        RunOptions options = parallelOptions(seed);
        options.subscribers.push_back(&sharded);
        RunReport report = run(
            [] {
                auto value =
                    std::make_shared<race::Shared<int>>("pm.handoff");
                auto ch = makeChan<Unit>();
                go([value, ch] {
                    value->store(42);
                    ch.send(Unit{});
                });
                ch.recv();
                if (value->load() != 42)
                    goPanic("lost the handoff write");
            },
            options);
        EXPECT_TRUE(report.raceMessages.empty())
            << "seed " << seed << ": " << report.raceMessages[0];
    }
}

TEST(ShardedDetector, SerialVerdictParityWithStandardDetector)
{
    // In deterministic mode the two detectors see the identical event
    // stream, so their any-race verdicts must agree on the corpus's
    // non-blocking reproduced set (report multiplicity may differ —
    // the suppression heuristics are independent).
    for (const corpus::BugCase *bug :
         corpus::bugsByBehavior(corpus::Behavior::NonBlocking, true)) {
        for (corpus::Variant variant :
             {corpus::Variant::Buggy, corpus::Variant::Fixed}) {
            race::Detector standard;
            RunOptions options;
            options.seed = 12345;
            options.subscribers.push_back(&standard);
            const RunReport ref =
                bug->run(variant, options).report;

            race::Sharded sharded;
            RunOptions sharded_options;
            sharded_options.seed = 12345;
            sharded_options.subscribers.push_back(&sharded);
            const RunReport got =
                bug->run(variant, sharded_options).report;

            EXPECT_EQ(got.raceMessages.empty(),
                      ref.raceMessages.empty())
                << bug->info.id << " variant "
                << (variant == corpus::Variant::Buggy ? "buggy"
                                                      : "fixed")
                << ": standard="
                << (ref.raceMessages.empty() ? "clean" : "raced")
                << " sharded="
                << (got.raceMessages.empty() ? "clean" : "raced");
        }
    }
}

// --- Corpus differential under parallel execution --------------------

TEST(ParallelCorpus, EveryKernelExecutesInBothVariants)
{
    // The whole corpus must *run* under M:N execution: no crash, no
    // livelock verdict, and fixed variants must never manifest the
    // bug no matter the interleaving.
    int buggy_manifested = 0;
    for (const corpus::BugCase &bug : corpus::corpus()) {
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            const corpus::BugOutcome buggy =
                bug.run(corpus::Variant::Buggy, parallelOptions(seed));
            EXPECT_FALSE(buggy.report.livelocked)
                << bug.info.id << " buggy seed " << seed;
            if (buggy.manifested) {
                buggy_manifested++;
                break; // early exit: this kernel's bug is exposed
            }
        }
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            const corpus::BugOutcome fixed =
                bug.run(corpus::Variant::Fixed, parallelOptions(seed));
            EXPECT_FALSE(fixed.manifested)
                << bug.info.id << " fixed seed " << seed << ": "
                << fixed.note;
            EXPECT_FALSE(fixed.report.livelocked)
                << bug.info.id << " fixed seed " << seed;
        }
    }
    // Parallel interleavings are not seed-reproducible, so individual
    // kernels may dodge their bug in a short batch — but across the
    // corpus a healthy majority must manifest (the deterministic
    // blocking bugs alone guarantee dozens).
    EXPECT_GE(buggy_manifested,
              static_cast<int>(corpus::corpus().size() / 2));
}

// --- Cross-mode determinism (the record/replay oracle is untouched) --

namespace
{

void
mixedWorkload()
{
    auto ch = makeChan<int>(4);
    auto mu = std::make_shared<Mutex>();
    auto total = std::make_shared<int>(0);
    auto wg = std::make_shared<WaitGroup>();
    wg->add(6);
    for (int i = 0; i < 6; ++i) {
        go([ch, mu, total, wg, i] {
            ch.send(i);
            mu->lock();
            *total += i;
            mu->unlock();
            wg->done();
        });
    }
    for (int i = 0; i < 6; ++i)
        ch.recv();
    wg->wait();
    gotime::sleep(1'000'000);
}

} // namespace

TEST(CrossModeDeterminism, SerialFingerprintsSurviveParallelRuns)
{
    RunOptions serial;
    serial.seed = 99;
    serial.collectTrace = true;

    const RunReport before = run(mixedWorkload, serial);
    const std::string fp_before = before.fingerprint();
    const std::string trace_before = before.formatTrace();

    // Interleave parallel executions of the same program — including
    // pool-backed ones — between the serial runs.
    for (uint64_t seed = 1; seed <= 3; ++seed)
        run(mixedWorkload, parallelOptions(seed));
    parallel::runParallel(mixedWorkload, RunOptions{});

    const RunReport after = run(mixedWorkload, serial);
    EXPECT_EQ(fp_before, after.fingerprint());
    EXPECT_EQ(trace_before, after.formatTrace());
}

TEST(CrossModeDeterminism, SerialSweepUnchangedByParallelNeighbors)
{
    const std::vector<uint64_t> seeds{1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<RunReport> before =
        parallel::runSeeds(mixedWorkload, seeds);

    for (uint64_t seed = 1; seed <= 2; ++seed)
        parallel::runParallel(mixedWorkload, RunOptions{});

    const std::vector<RunReport> after =
        parallel::runSeeds(mixedWorkload, seeds);
    ASSERT_EQ(before.size(), after.size());
    for (size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].fingerprint(), after[i].fingerprint())
            << "seed " << seeds[i];
    }
}

TEST(CrossModeDeterminism, PoolExecutorRunParallelCompletes)
{
    parallel::SweepOptions sweep;
    sweep.workers = 4;
    const RunReport report =
        parallel::runParallel(mixedWorkload, RunOptions{}, sweep);
    EXPECT_TRUE(report.completed) << report.describe();
}
