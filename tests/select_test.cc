/**
 * @file
 * Select semantics tests: ready-case choice, random choice among
 * multiple ready cases (the Figure 11 nondeterminism), default
 * branches, blocking selects, nil-channel cases, and send cases.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "golite/golite.hh"

namespace golite
{
namespace
{

TEST(Select, TakesTheOnlyReadyCase)
{
    int got = 0;
    run([&] {
        Chan<int> a = makeChan<int>(1);
        Chan<int> b = makeChan<int>(1);
        a.send(5);
        int chosen = Select()
            .recv<int>(a, [&](int v, bool) { got = v; })
            .recv<int>(b, [&](int, bool) { got = -1; })
            .run();
        EXPECT_EQ(chosen, 0);
    });
    EXPECT_EQ(got, 5);
}

TEST(Select, RandomAmongReadyCases)
{
    // Both cases ready: Go chooses uniformly at random. Sweep seeds
    // and require both outcomes to occur — this nondeterminism is the
    // mechanism behind the paper's Figure 1 and Figure 11 bugs.
    std::set<int> outcomes;
    for (uint64_t seed = 0; seed < 32; ++seed) {
        RunOptions options;
        options.seed = seed;
        run([&] {
            Chan<int> a = makeChan<int>(1);
            Chan<int> b = makeChan<int>(1);
            a.send(1);
            b.send(2);
            Select()
                .recv<int>(a, [&](int, bool) { outcomes.insert(0); })
                .recv<int>(b, [&](int, bool) { outcomes.insert(1); })
                .run();
        }, options);
    }
    EXPECT_EQ(outcomes.size(), 2u);
}

TEST(Select, DefaultWhenNothingReady)
{
    bool took_default = false;
    run([&] {
        Chan<int> a = makeChan<int>();
        int chosen = Select()
            .recv<int>(a, [](int, bool) {})
            .def([&] { took_default = true; })
            .run();
        EXPECT_EQ(chosen, 1);
    });
    EXPECT_TRUE(took_default);
}

TEST(Select, BlocksUntilACaseFires)
{
    int got = 0;
    run([&] {
        Chan<int> a = makeChan<int>();
        Chan<int> b = makeChan<int>();
        go([b] { b.send(9); });
        Select()
            .recv<int>(a, [&](int v, bool) { got = v; })
            .recv<int>(b, [&](int v, bool) { got = v; })
            .run();
    });
    EXPECT_EQ(got, 9);
}

TEST(Select, BlockedSelectSeesClose)
{
    bool closed_seen = false;
    run([&] {
        Chan<int> a = makeChan<int>();
        go([a] {
            yield();
            a.close();
        });
        Select()
            .recv<int>(a, [&](int, bool ok) { closed_seen = !ok; })
            .run();
    });
    EXPECT_TRUE(closed_seen);
}

TEST(Select, SendCaseDeliversWhenReceiverArrives)
{
    int got = 0;
    run([&] {
        Chan<int> a = makeChan<int>();
        go([&, a] { got = a.recv().value; });
        yield();
        bool sent = false;
        Select()
            .send<int>(a, 33, [&] { sent = true; })
            .run();
        EXPECT_TRUE(sent);
    });
    EXPECT_EQ(got, 33);
}

TEST(Select, BlockedSendCaseCompletes)
{
    int got = 0;
    run([&] {
        Chan<int> a = makeChan<int>();
        go([&, a] {
            yield();
            yield();
            got = a.recv().value;
        });
        Select()
            .send<int>(a, 44, [] {})
            .run();
        yield();
        yield();
    });
    EXPECT_EQ(got, 44);
}

TEST(Select, NilChannelCaseNeverFires)
{
    int got = 0;
    run([&] {
        Chan<int> nil_chan;
        Chan<int> live = makeChan<int>(1);
        live.send(3);
        int chosen = Select()
            .recv<int>(nil_chan, [&](int, bool) { got = -1; })
            .recv<int>(live, [&](int v, bool) { got = v; })
            .run();
        EXPECT_EQ(chosen, 1);
    });
    EXPECT_EQ(got, 3);
}

TEST(Select, AllNilBlocksForever)
{
    RunReport report = run([] {
        Chan<int> nil_chan;
        Select().recv<int>(nil_chan, [](int, bool) {}).run();
    });
    EXPECT_TRUE(report.globalDeadlock);
}

TEST(Select, EmptySelectBlocksForever)
{
    RunReport report = run([] { Select().run(); });
    EXPECT_TRUE(report.globalDeadlock);
}

TEST(Select, LosingWaitersAreCancelled)
{
    // After a blocked select completes on one channel, its waiter on
    // the other channel must be gone: a later send on that other
    // channel must not be consumed by the dead select.
    int other_got = 0;
    RunReport report = run([&] {
        Chan<int> a = makeChan<int>();
        Chan<int> b = makeChan<int>(1);
        go([a] { a.send(1); });
        Select()
            .recv<int>(a, [](int, bool) {})
            .recv<int>(b, [](int, bool) {})
            .run();
        b.send(8); // buffered: must land in the buffer
        other_got = b.recv().value;
    });
    EXPECT_EQ(other_got, 8);
    EXPECT_TRUE(report.clean());
}

TEST(Select, TwoSelectsRendezvous)
{
    // A select-send meeting a select-recv on an unbuffered channel.
    int got = 0;
    RunReport report = run([&] {
        Chan<int> ch = makeChan<int>();
        go([ch] {
            Select().send<int>(ch, 77, [] {}).run();
        });
        Select()
            .recv<int>(ch, [&](int v, bool) { got = v; })
            .run();
        yield();
    });
    EXPECT_EQ(got, 77);
    EXPECT_TRUE(report.clean());
}

TEST(Select, SendOnClosedChannelPanicsWhenPolled)
{
    RunReport report = run([] {
        Chan<int> ch = makeChan<int>(1);
        ch.close();
        Select().send<int>(ch, 1, [] {}).run();
    });
    EXPECT_TRUE(report.panicked);
    EXPECT_EQ(report.panicMessage, "send on closed channel");
}

TEST(Select, BlockedSendCasePanicsOnClose)
{
    RunReport report = run([] {
        Chan<int> ch = makeChan<int>(); // no receiver ever
        go([ch] {
            yield();
            ch.close();
        });
        Select().send<int>(ch, 1, [] {}).run();
    });
    EXPECT_TRUE(report.panicked);
    EXPECT_EQ(report.panicMessage, "send on closed channel");
}

TEST(Select, TimeoutPattern)
{
    // The canonical select { case <-ch: ...; case <-time.After(d) }.
    bool timed_out = false;
    run([&] {
        Chan<int> slow = makeChan<int>();
        go([slow] {
            gotime::sleep(100 * gotime::kMillisecond);
            slow.trySend(1);
        });
        Select()
            .recv<int>(slow, [](int, bool) {})
            .recv<gotime::Time>(gotime::after(10 * gotime::kMillisecond),
                                [&](gotime::Time, bool) {
                                    timed_out = true;
                                })
            .run();
    });
    EXPECT_TRUE(timed_out);
}

TEST(Select, ChoiceCountsAreRoughlyUniform)
{
    // Property check on select's uniformity across 3 ready cases.
    std::map<int, int> counts;
    for (uint64_t seed = 0; seed < 300; ++seed) {
        RunOptions options;
        options.seed = seed;
        run([&] {
            Chan<int> chans[3] = {makeChan<int>(1), makeChan<int>(1),
                                  makeChan<int>(1)};
            for (auto &c : chans)
                c.send(1);
            Select()
                .recv<int>(chans[0], [&](int, bool) { counts[0]++; })
                .recv<int>(chans[1], [&](int, bool) { counts[1]++; })
                .recv<int>(chans[2], [&](int, bool) { counts[2]++; })
                .run();
        }, options);
    }
    for (int i = 0; i < 3; ++i) {
        EXPECT_GT(counts[i], 60) << "case " << i;
        EXPECT_LT(counts[i], 140) << "case " << i;
    }
}

} // namespace
} // namespace golite
