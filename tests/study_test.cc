/**
 * @file
 * Tests for the study database and aggregations: every marginal the
 * paper states must fall out of the record set exactly, and the lift
 * statistics must land on the published values.
 */

#include <gtest/gtest.h>

#include "study/record.hh"
#include "study/stats.hh"
#include "study/tables.hh"

namespace golite::study
{
namespace
{

TEST(Database, Has171Bugs)
{
    EXPECT_EQ(database().size(), 171u);
}

TEST(Database, BehaviorSplitMatchesPaper)
{
    // 85 blocking, 86 non-blocking (Section 4).
    int blocking = 0, non_blocking = 0;
    for (const BugRecord &rec : database())
        (rec.behavior == Behavior::Blocking ? blocking : non_blocking)++;
    EXPECT_EQ(blocking, 85);
    EXPECT_EQ(non_blocking, 86);
}

TEST(Database, CauseSplitMatchesPaper)
{
    // 105 shared memory, 66 message passing (Section 4).
    int shared = 0, message = 0;
    for (const BugRecord &rec : database())
        (rec.cause == CauseDim::SharedMemory ? shared : message)++;
    EXPECT_EQ(shared, 105);
    EXPECT_EQ(message, 66);
}

TEST(Database, Table5RowsMatchPaper)
{
    auto rows = taxonomy();
    ASSERT_EQ(rows.size(), 7u);
    auto expect = [&rows](const std::string &app, int blocking,
                          int non_blocking, int shared, int message) {
        for (const TaxonomyRow &row : rows) {
            if (row.app != app)
                continue;
            EXPECT_EQ(row.blocking, blocking) << app;
            EXPECT_EQ(row.nonBlocking, non_blocking) << app;
            EXPECT_EQ(row.sharedMemory, shared) << app;
            EXPECT_EQ(row.messagePassing, message) << app;
            return;
        }
        FAIL() << "missing app " << app;
    };
    expect("Docker", 21, 23, 28, 16);
    expect("Kubernetes", 17, 17, 20, 14);
    expect("etcd", 21, 16, 18, 19);
    expect("CockroachDB", 12, 16, 23, 5);
    expect("gRPC", 11, 12, 12, 11);
    expect("BoltDB", 3, 2, 4, 1);
    expect("Total", 85, 86, 105, 66);
}

TEST(Database, Table6TotalsMatchPaper)
{
    auto counts = causeCounts(Behavior::Blocking);
    EXPECT_EQ(counts[SubCause::Mutex], 28);
    EXPECT_EQ(counts[SubCause::RWMutex], 5);
    EXPECT_EQ(counts[SubCause::Wait], 3);
    EXPECT_EQ(counts[SubCause::Chan], 29);
    EXPECT_EQ(counts[SubCause::ChanWithOther], 16);
    EXPECT_EQ(counts[SubCause::MessagingLibrary], 4);
}

TEST(Database, BlockingCauseShareMatchesObservation3)
{
    // ~42% shared memory vs ~58% message passing among blocking bugs.
    int shared = 0, message = 0;
    for (const BugRecord &rec : database()) {
        if (rec.behavior != Behavior::Blocking)
            continue;
        (rec.cause == CauseDim::SharedMemory ? shared : message)++;
    }
    EXPECT_EQ(shared, 36);
    EXPECT_EQ(message, 49);
    EXPECT_NEAR(100.0 * message / 85.0, 58.0, 1.0);
}

TEST(Database, Table9TotalsMatchPaper)
{
    auto counts = causeCounts(Behavior::NonBlocking);
    EXPECT_EQ(counts[SubCause::Traditional], 46);
    EXPECT_EQ(counts[SubCause::AnonymousFunction], 11);
    EXPECT_EQ(counts[SubCause::WaitGroupMisuse], 6);
    EXPECT_EQ(counts[SubCause::LibShared], 6);
    EXPECT_EQ(counts[SubCause::ChanMisuse], 16);
    EXPECT_EQ(counts[SubCause::LibMessage], 1);
    // ~80% of non-blocking bugs fail to protect shared memory.
    const int shared = 46 + 11 + 6 + 6;
    EXPECT_NEAR(100.0 * shared / 86.0, 80.0, 1.0);
}

TEST(Database, Table7TextualCountsHold)
{
    auto matrix = fixStrategyMatrix(Behavior::Blocking);
    // "8 were fixed by adding a missing unlock" (Mutex+RWMutex).
    EXPECT_EQ(matrix[SubCause::Mutex][FixStrategy::AddSync] +
                  matrix[SubCause::RWMutex][FixStrategy::AddSync],
              8);
    // "9 were fixed by moving lock or unlock".
    EXPECT_EQ(matrix[SubCause::Mutex][FixStrategy::MoveSync] +
                  matrix[SubCause::RWMutex][FixStrategy::MoveSync],
              9);
    // "11 were fixed by removing an extra lock operation"... the
    // Remove column over Mutex+RWMutex (6+1) plus the Change cells
    // that drop a lock (2+1) and 1 Misc; we keep Remove+Change = 10
    // and note the residual in EXPERIMENTS.md.
    EXPECT_GE(matrix[SubCause::Mutex][FixStrategy::RemoveSync] +
                  matrix[SubCause::RWMutex][FixStrategy::RemoveSync],
              7);
}

TEST(Database, Table7LiftsMatchPaper)
{
    EXPECT_NEAR(liftCauseStrategy(Behavior::Blocking, SubCause::Mutex,
                                  FixStrategy::MoveSync),
                1.52, 0.01);
    EXPECT_NEAR(liftCauseStrategy(Behavior::Blocking, SubCause::Chan,
                                  FixStrategy::AddSync),
                1.42, 0.01);
}

TEST(Database, Table10ShapeMatchesPaper)
{
    auto matrix = fixStrategyMatrix(Behavior::NonBlocking);
    int timing = 0, bypass = 0, data_private = 0, total = 0;
    for (const auto &[cause, fixes] : matrix) {
        (void)cause;
        for (const auto &[strategy, count] : fixes) {
            total += count;
            if (strategy == FixStrategy::AddSync ||
                strategy == FixStrategy::MoveSync) {
                timing += count;
            }
            if (strategy == FixStrategy::Bypass)
                bypass += count;
            if (strategy == FixStrategy::DataPrivate)
                data_private += count;
        }
    }
    EXPECT_EQ(total, 86);
    EXPECT_EQ(bypass, 10);       // "10 ... eliminating ... bypassing"
    EXPECT_EQ(data_private, 14); // "14 bugs ... private copy"
    EXPECT_NEAR(100.0 * timing / 86.0, 69.0, 2.5); // "around 69%"
}

TEST(Database, DataPrivateFixesAreAllSharedMemory)
{
    for (const BugRecord &rec : database()) {
        if (rec.fixStrategy == FixStrategy::DataPrivate) {
            EXPECT_EQ(rec.cause, CauseDim::SharedMemory) << rec.id;
        }
    }
}

TEST(Database, Table10LiftsMatchPaper)
{
    EXPECT_NEAR(liftCauseStrategy(Behavior::NonBlocking,
                                  SubCause::ChanMisuse,
                                  FixStrategy::MoveSync),
                2.21, 0.01);
    EXPECT_NEAR(liftCauseStrategy(Behavior::NonBlocking,
                                  SubCause::AnonymousFunction,
                                  FixStrategy::DataPrivate),
                2.23, 0.01);
}

TEST(Database, Table11MatchesPaperExactly)
{
    auto matrix = fixPrimitiveMatrix();
    // Column totals: Mutex 32, Channel 19, Atomic 10, WaitGroup 7,
    // Cond 4, Misc 3, None 19 (94 patch primitives).
    std::map<FixPrimitive, int> totals;
    int grand = 0;
    for (const auto &[cause, prims] : matrix) {
        (void)cause;
        for (const auto &[p, count] : prims) {
            totals[p] += count;
            grand += count;
        }
    }
    EXPECT_EQ(totals[FixPrimitive::Mutex], 32);
    EXPECT_EQ(totals[FixPrimitive::Channel], 19);
    EXPECT_EQ(totals[FixPrimitive::Atomic], 10);
    EXPECT_EQ(totals[FixPrimitive::WaitGroup], 7);
    EXPECT_EQ(totals[FixPrimitive::Cond], 4);
    EXPECT_EQ(totals[FixPrimitive::Misc], 3);
    EXPECT_EQ(totals[FixPrimitive::None], 19);
    EXPECT_EQ(grand, 94);
    // The chan row as published.
    EXPECT_EQ(matrix[SubCause::ChanMisuse][FixPrimitive::Channel], 11);
    EXPECT_EQ(matrix[SubCause::Traditional][FixPrimitive::Mutex], 24);
}

TEST(Database, Table11LiftMatchesPaper)
{
    EXPECT_NEAR(liftCausePrimitive(SubCause::ChanMisuse,
                                   FixPrimitive::Channel),
                2.7, 0.05);
}

TEST(Database, LifetimesAreLongAndDeterministic)
{
    auto shared = lifetimes(CauseDim::SharedMemory);
    auto message = lifetimes(CauseDim::MessagePassing);
    EXPECT_EQ(shared.size(), 105u);
    EXPECT_EQ(message.size(), 66u);
    // "most bugs we study ... have long life time": median in the
    // months-to-years range.
    EXPECT_GT(median(shared), 100.0);
    EXPECT_GT(median(message), 100.0);
    // Deterministic database: same values every access.
    EXPECT_EQ(lifetimes(CauseDim::SharedMemory), shared);
}

TEST(Database, BlockingPatchesAreSmall)
{
    // Section 5.2: blocking patches average 6.8 lines.
    std::vector<int> sizes;
    for (const BugRecord &rec : database()) {
        if (rec.behavior == Behavior::Blocking)
            sizes.push_back(rec.patchLines);
    }
    EXPECT_NEAR(mean(sizes), 6.8, 1.5);
}

TEST(Stats, LiftBasics)
{
    // Independent: P(AB) = P(A)P(B).
    EXPECT_NEAR(lift(1, 2, 50, 100), 1.0, 1e-9);
    // Perfect correlation.
    EXPECT_NEAR(lift(10, 10, 10, 100), 10.0, 1e-9);
    // Degenerate inputs.
    EXPECT_EQ(lift(0, 0, 5, 100), 0.0);
}

TEST(Stats, EmpiricalCdf)
{
    auto cdf = empiricalCdf({1, 2, 3, 4}, {0, 2, 10});
    ASSERT_EQ(cdf.size(), 3u);
    EXPECT_DOUBLE_EQ(cdf[0], 0.0);
    EXPECT_DOUBLE_EQ(cdf[1], 0.5);
    EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(Stats, MeanMedian)
{
    EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
    EXPECT_DOUBLE_EQ(median({5, 1, 9}), 5.0);
    EXPECT_DOUBLE_EQ(median({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Render, TablesRenderNonEmpty)
{
    EXPECT_NE(renderTable1().find("Docker"), std::string::npos);
    EXPECT_NE(renderTable5().find("Total"), std::string::npos);
    EXPECT_NE(renderTable6().find("Chan w/"), std::string::npos);
    EXPECT_NE(renderTable7().find("lift"), std::string::npos);
    EXPECT_NE(renderTable9().find("traditional"), std::string::npos);
    EXPECT_NE(renderTable10().find("Private"), std::string::npos);
    EXPECT_NE(renderTable11().find("Channel"), std::string::npos);
    EXPECT_NE(renderFigure4().find("CDF"), std::string::npos);
}

} // namespace
} // namespace golite::study
