/**
 * @file
 * Event-bus mechanics and RunReport drain/merge paths: masked
 * delivery, attach-order draining with several subscribers in one
 * run, reportLimit suppression interacting with dedup, and
 * partial-deadlock + race reports coexisting in one report.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "golite/golite.hh"

namespace golite
{
namespace
{

/** Records the kinds it sees; reports one message per run. */
class ProbeSub : public Subscriber
{
  public:
    ProbeSub(EventMask mask, std::string tag)
        : mask_(mask), tag_(std::move(tag))
    {
    }

    EventMask eventMask() const override { return mask_; }

    void
    onEvent(const RuntimeEvent &ev) override
    {
        seen.push_back(ev.kind);
    }

    std::vector<std::string>
    drainReports() override
    {
        return {tag_ + ": saw " + std::to_string(seen.size()) +
                " events"};
    }

    void
    finalizeRun(RunReport &report) override
    {
        finalized = true;
        (void)report;
    }

    std::vector<EventKind> seen;
    bool finalized = false;

  private:
    EventMask mask_;
    std::string tag_;
};

void
racyLeakyProgram()
{
    // One data race (two unsynchronized writers) and one goroutine
    // leaked on a channel nobody sends to.
    race::Shared<int> shared("shared-x");
    Chan<int> never = makeChan<int>();
    WaitGroup wg;
    wg.add(2);
    for (int i = 0; i < 2; ++i) {
        go([&] {
            shared.store(1);
            wg.done();
        });
    }
    go("leaky-recv", [never] { never.recv(); });
    wg.wait();
}

TEST(EventBus, MaskedDispatchDeliversOnlyDeclaredKinds)
{
    ProbeSub chan_only(eventBit(EventKind::ChanOp), "chan");
    RunOptions options;
    options.subscribers.push_back(&chan_only);
    run([] {
        Chan<int> ch = makeChan<int>(1);
        ch.send(7);
        ch.recv();
        Mutex mu;
        mu.lock();
        mu.unlock();
    }, options);

    ASSERT_FALSE(chan_only.seen.empty());
    if (EventBus::maskedDispatch()) {
        for (EventKind kind : chan_only.seen)
            EXPECT_EQ(kind, EventKind::ChanOp);
    }
    const size_t chan_ops = std::count(chan_only.seen.begin(),
                                       chan_only.seen.end(),
                                       EventKind::ChanOp);
    EXPECT_EQ(chan_ops, 2u); // one send, one recv
}

TEST(EventBus, DrainsSubscriberReportsInAttachOrder)
{
    ProbeSub first(eventBit(EventKind::GoSpawn), "first");
    ProbeSub second(eventBit(EventKind::GoSpawn), "second");
    RunOptions options;
    options.subscribers = {&first, &second};
    RunReport report = run([] { go([] {}); }, options);

    ASSERT_EQ(report.raceMessages.size(), 2u);
    EXPECT_EQ(report.raceMessages[0].rfind("first:", 0), 0u);
    EXPECT_EQ(report.raceMessages[1].rfind("second:", 0), 0u);
    EXPECT_TRUE(first.finalized);
    EXPECT_TRUE(second.finalized);
}

TEST(EventBus, RaceAndPartialDeadlockReportsCoexist)
{
    race::Detector races;
    waitgraph::Detector waits;
    RunOptions options;
    options.seed = 3;
    options.subscribers = {&races, &waits};
    RunReport report = run(racyLeakyProgram, options);

    // The race lands in raceMessages, the leaked receiver in
    // partialDeadlocks — one run, two detectors, one report.
    EXPECT_FALSE(report.raceMessages.empty());
    ASSERT_FALSE(report.partialDeadlocks.empty());
    EXPECT_EQ(report.partialDeadlocks[0].cause,
              DeadlockCause::ChanNoSender);
    ASSERT_EQ(report.leaked.size(), 1u);
    EXPECT_EQ(report.leaked[0].label, "leaky-recv");
}

TEST(EventBus, ReportLimitSuppressionComposesWithDedup)
{
    // Three goroutines hammer one address: many racy pairs, every
    // one repeated many times. Dedup collapses repeats of a (gids,
    // kinds) combo; the per-object reportLimit then caps how many
    // distinct combos are reported at all.
    auto hammer = [] {
        race::Shared<int> x("hammer");
        WaitGroup wg;
        wg.add(3);
        for (int g = 0; g < 3; ++g) {
            go([&] {
                for (int i = 0; i < 8; ++i)
                    x.update([](int &v) { v++; });
                wg.done();
            });
        }
        wg.wait();
    };

    race::Detector capped;
    capped.setReportLimit(2);
    RunOptions options;
    options.seed = 7;
    options.preemptProb = 0.3;
    options.subscribers.push_back(&capped);
    run(hammer, options);

    EXPECT_LE(capped.reports().size(), 2u);

    // Same run, generous limit: dedup alone keeps each combo once.
    race::Detector uncapped;
    uncapped.setReportLimit(64);
    RunOptions options2;
    options2.seed = 7;
    options2.preemptProb = 0.3;
    options2.subscribers.push_back(&uncapped);
    run(hammer, options2);

    std::set<std::tuple<uint64_t, bool, uint64_t, bool>> combos;
    for (const race::RaceReport &r : uncapped.reports()) {
        EXPECT_TRUE(combos
                        .insert({r.firstGid, r.firstWrite,
                                 r.secondGid, r.secondWrite})
                        .second)
            << "duplicate (gids, kinds) combo reported";
    }
    EXPECT_GE(uncapped.reports().size(), capped.reports().size());
}

TEST(EventBus, EventKindNamesAreExhaustive)
{
    for (int i = 0; i < kEventKindCount; ++i)
        EXPECT_STRNE(eventKindName(static_cast<EventKind>(i)), "?")
            << "EventKind " << i;
    for (int i = 0; i < kChanOpKindCount; ++i)
        EXPECT_STRNE(chanOpKindName(static_cast<ChanOpKind>(i)), "?")
            << "ChanOpKind " << i;
}

TEST(EventBus, ZeroSubscribersMeansNoActiveKinds)
{
    EventBus bus;
    for (int i = 0; i < kEventKindCount; ++i)
        EXPECT_FALSE(bus.wants(static_cast<EventKind>(i)));
    ProbeSub probe(eventBit(EventKind::GoPark), "probe");
    bus.attach(&probe);
    EXPECT_TRUE(bus.wants(EventKind::GoPark));
    if (EventBus::maskedDispatch()) {
        EXPECT_FALSE(bus.wants(EventKind::GoUnpark));
    }
    bus.reset();
    EXPECT_FALSE(bus.wants(EventKind::GoPark));
}

} // namespace
} // namespace golite
