/**
 * @file
 * Corpus-wide property tests plus targeted assertions on the famous
 * figure kernels.
 *
 * Core properties, parameterized over every bug in the corpus:
 *  - the fixed variant never manifests, across a seed sweep;
 *  - the buggy variant manifests for at least one seed;
 *  - metadata is internally consistent (behaviour vs subcause, the
 *    reproduced-set counts the paper reports, the two
 *    detector-visible global deadlocks).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>

#include "corpus/bug.hh"
#include "golite/golite.hh"

namespace golite::corpus
{
namespace
{

/**
 * Re-run a failing (kernel, variant, seed) with a TraceEventSink
 * attached and dump the Chrome trace JSON next to the test binary
 * (or under $GOLITE_TRACE_DUMP_DIR), so a corpus regression arrives
 * with its schedule timeline instead of just a seed number.
 */
void
dumpFailureTrace(const BugCase &bug, Variant variant, uint64_t seed)
{
    obs::TraceEventSink sink;
    RunOptions options;
    options.seed = seed;
    options.subscribers.push_back(&sink);
    bug.run(variant, options);

    const char *dir = std::getenv("GOLITE_TRACE_DUMP_DIR");
    std::string path = dir != nullptr ? std::string(dir) + "/" : "";
    path += bug.info.id;
    path += variant == Variant::Fixed ? "-fixed" : "-buggy";
    path += "-seed" + std::to_string(seed) + ".trace.json";
    if (sink.writeFile(path)) {
        std::fprintf(stderr,
                     "[ trace    ] schedule timeline dumped to %s\n",
                     path.c_str());
    }
}

class EveryBug : public ::testing::TestWithParam<const BugCase *>
{
};

std::vector<const BugCase *>
allBugs()
{
    std::vector<const BugCase *> out;
    for (const BugCase &bug : corpus())
        out.push_back(&bug);
    return out;
}

std::string
bugName(const ::testing::TestParamInfo<const BugCase *> &info)
{
    std::string name = info.param->info.id;
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

TEST_P(EveryBug, FixedVariantNeverMisbehaves)
{
    const BugCase &bug = *GetParam();
    for (uint64_t seed = 0; seed < 40; ++seed) {
        RunOptions options;
        options.seed = seed;
        BugOutcome outcome = bug.run(Variant::Fixed, options);
        EXPECT_FALSE(outcome.manifested)
            << bug.info.id << " fixed variant misbehaved at seed "
            << seed << ": " << outcome.note;
        EXPECT_FALSE(outcome.report.panicked)
            << bug.info.id << " fixed variant panicked at seed " << seed;
        EXPECT_TRUE(outcome.report.leaked.empty())
            << bug.info.id << " fixed variant leaked at seed " << seed;
        EXPECT_FALSE(outcome.report.globalDeadlock)
            << bug.info.id << " fixed variant deadlocked at seed "
            << seed;
        if (outcome.manifested || outcome.report.panicked ||
            !outcome.report.leaked.empty() ||
            outcome.report.globalDeadlock)
            dumpFailureTrace(bug, Variant::Fixed, seed);
    }
}

TEST_P(EveryBug, BuggyVariantManifestsOrRaces)
{
    // Every kernel must expose its failure under *some* schedule:
    // either visibly (block/panic/wrong result) or to the race
    // detector (pure races whose misbehaviour is nondeterminism).
    const BugCase &bug = *GetParam();
    bool exposed = false;
    for (uint64_t seed = 0; seed < 80 && !exposed; ++seed) {
        race::Detector detector;
        RunOptions options;
        options.seed = seed;
        options.subscribers.push_back(&detector);
        BugOutcome outcome = bug.run(Variant::Buggy, options);
        exposed = outcome.manifested || !detector.reports().empty();
    }
    EXPECT_TRUE(exposed)
        << bug.info.id
        << " buggy variant never misbehaved nor raced in 80 seeds";
}

TEST_P(EveryBug, FixedVariantIsRaceFreeToTheDetector)
{
    const BugCase &bug = *GetParam();
    for (uint64_t seed = 0; seed < 20; ++seed) {
        race::Detector detector;
        RunOptions options;
        options.seed = seed;
        options.subscribers.push_back(&detector);
        bug.run(Variant::Fixed, options);
        EXPECT_TRUE(detector.reports().empty())
            << bug.info.id << " fixed variant raced at seed " << seed
            << ": " << detector.reports()[0].describe();
        if (!detector.reports().empty())
            dumpFailureTrace(bug, Variant::Fixed, seed);
    }
}

TEST_P(EveryBug, MetadataIsConsistent)
{
    const BugInfo &info = GetParam()->info;
    const bool blocking_subcause =
        info.subcause == SubCause::Mutex ||
        info.subcause == SubCause::RWMutex ||
        info.subcause == SubCause::Wait ||
        info.subcause == SubCause::Chan ||
        info.subcause == SubCause::ChanWithOther ||
        info.subcause == SubCause::MessagingLibrary;
    EXPECT_EQ(info.behavior == Behavior::Blocking, blocking_subcause)
        << info.id;

    const bool shared_subcause =
        info.subcause == SubCause::Mutex ||
        info.subcause == SubCause::RWMutex ||
        info.subcause == SubCause::Wait ||
        info.subcause == SubCause::Traditional ||
        info.subcause == SubCause::AnonymousFunction ||
        info.subcause == SubCause::WaitGroupMisuse ||
        info.subcause == SubCause::LibShared;
    EXPECT_EQ(info.cause == CauseDim::SharedMemory, shared_subcause)
        << info.id;
    EXPECT_FALSE(info.id.empty());
    EXPECT_FALSE(info.app.empty());
    EXPECT_FALSE(info.description.empty());
}

INSTANTIATE_TEST_SUITE_P(Corpus, EveryBug,
                         ::testing::ValuesIn(allBugs()), bugName);

TEST(Corpus, ReproducedSetMatchesThePaper)
{
    // 21 blocking + 20 non-blocking reproduced bugs (Section 4).
    EXPECT_EQ(bugsByBehavior(Behavior::Blocking, true).size(), 21u);
    EXPECT_EQ(bugsByBehavior(Behavior::NonBlocking, true).size(), 20u);
}

TEST(Corpus, IdsAreUnique)
{
    std::set<std::string> ids;
    for (const BugCase &bug : corpus())
        EXPECT_TRUE(ids.insert(bug.info.id).second)
            << "duplicate id " << bug.info.id;
}

TEST(Corpus, ExactlyTwoBugsGloballyDeadlock)
{
    // The Table 8 headline: only boltdb-392 and boltdb-240 block
    // *every* goroutine, which is all the built-in detector can see.
    std::set<std::string> global;
    for (const BugCase &bug : corpus()) {
        if (bug.info.reproducedSet && bug.info.globallyDeadlocks)
            global.insert(bug.info.id);
    }
    EXPECT_EQ(global,
              (std::set<std::string>{"boltdb-392", "boltdb-240"}));
}

TEST(Corpus, GloballyDeadlockingBugsAreDeterministic)
{
    for (const BugCase &bug : corpus()) {
        if (!bug.info.globallyDeadlocks)
            continue;
        for (uint64_t seed = 0; seed < 10; ++seed) {
            RunOptions options;
            options.seed = seed;
            BugOutcome outcome = bug.run(Variant::Buggy, options);
            EXPECT_TRUE(outcome.report.globalDeadlock)
                << bug.info.id << " seed " << seed;
        }
    }
}

TEST(Corpus, FindBugWorks)
{
    ASSERT_NE(findBug("kubernetes-5316"), nullptr);
    EXPECT_EQ(findBug("kubernetes-5316")->info.figure, "Figure 1");
    EXPECT_EQ(findBug("nope-0"), nullptr);
}

// --- Targeted figure-kernel assertions ---------------------------

TEST(FigureKernels, Figure1TimeoutLeaksTheHandler)
{
    const BugCase *bug = findBug("kubernetes-5316");
    ASSERT_NE(bug, nullptr);
    BugOutcome outcome = bug->run(Variant::Buggy, {});
    ASSERT_TRUE(outcome.manifested) << outcome.note;
    ASSERT_EQ(outcome.report.leaked.size(), 1u);
    EXPECT_EQ(outcome.report.leaked[0].reason, WaitReason::ChanSend);
    EXPECT_EQ(outcome.report.leaked[0].label, "request-handler");
    EXPECT_FALSE(outcome.report.globalDeadlock)
        << "partial blocking must be invisible to the built-in "
           "detector";
}

TEST(FigureKernels, Figure5WaitInLoopDeadlocksGlobally)
{
    const BugCase *bug = findBug("docker-25384");
    ASSERT_NE(bug, nullptr);
    BugOutcome outcome = bug->run(Variant::Buggy, {});
    EXPECT_TRUE(outcome.report.globalDeadlock);
    BugOutcome fixed_outcome = bug->run(Variant::Fixed, {});
    EXPECT_TRUE(fixed_outcome.report.clean());
}

TEST(FigureKernels, Figure6OrphanedContextLeaksMonitor)
{
    const BugCase *bug = findBug("grpc-862");
    ASSERT_NE(bug, nullptr);
    BugOutcome outcome = bug->run(Variant::Buggy, {});
    ASSERT_TRUE(outcome.manifested) << outcome.note;
    ASSERT_EQ(outcome.report.leaked.size(), 1u);
    EXPECT_EQ(outcome.report.leaked[0].label, "http2-monitor");
}

TEST(FigureKernels, Figure7ChannelPlusMutexLeaksBoth)
{
    const BugCase *bug = findBug("etcd-6857");
    ASSERT_NE(bug, nullptr);
    BugOutcome outcome = bug->run(Variant::Buggy, {});
    ASSERT_TRUE(outcome.manifested) << outcome.note;
    EXPECT_EQ(outcome.report.leaked.size(), 2u);
    EXPECT_FALSE(outcome.report.globalDeadlock);
}

TEST(FigureKernels, Figure8LoopCaptureRaces)
{
    const BugCase *bug = findBug("docker-4951");
    ASSERT_NE(bug, nullptr);
    race::Detector detector;
    RunOptions options;
    options.subscribers.push_back(&detector);
    bug->run(Variant::Buggy, options);
    EXPECT_TRUE(detector.racedOn("i"));
}

TEST(FigureKernels, Figure10DoubleClosePanics)
{
    const BugCase *bug = findBug("docker-24007");
    ASSERT_NE(bug, nullptr);
    bool panicked = false;
    for (uint64_t seed = 0; seed < 50 && !panicked; ++seed) {
        RunOptions options;
        options.seed = seed;
        BugOutcome outcome = bug->run(Variant::Buggy, options);
        if (outcome.report.panicked) {
            panicked = true;
            EXPECT_EQ(outcome.report.panicMessage,
                      "close of closed channel");
        }
    }
    EXPECT_TRUE(panicked);
}

TEST(FigureKernels, Figure12PlaceholderTimerReturnsEarly)
{
    const BugCase *bug = findBug("etcd-7423");
    ASSERT_NE(bug, nullptr);
    BugOutcome outcome = bug->run(Variant::Buggy, {});
    EXPECT_TRUE(outcome.manifested) << outcome.note;
    BugOutcome fixed_outcome = bug->run(Variant::Fixed, {});
    EXPECT_FALSE(fixed_outcome.manifested) << fixed_outcome.note;
}

TEST(FigureKernels, Figure11SelectRunsTaskAfterStopSometimes)
{
    const BugCase *bug = findBug("kubernetes-59780");
    ASSERT_NE(bug, nullptr);
    const int manifested = bug->manifestCount(40);
    // Both select outcomes must occur across seeds: the extra run
    // (the bug) and the clean stop.
    EXPECT_GT(manifested, 0);
    EXPECT_LT(manifested, 40);
}

TEST(Corpus, ManifestCountIsDeterministicPerSeedSet)
{
    const BugCase *bug = findBug("etcd-3922");
    ASSERT_NE(bug, nullptr);
    EXPECT_EQ(bug->manifestCount(25), bug->manifestCount(25));
}

} // namespace
} // namespace golite::corpus
