/**
 * @file
 * Happens-before race detector tests: detection of real races,
 * suppression across every synchronization primitive's HB edge, the
 * no-false-positives property the paper reports, and the bounded
 * shadow-history miss mode.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "golite/golite.hh"

namespace golite
{
namespace
{

using race::Detector;
using race::Shared;

RunReport
runRaced(Detector &detector, std::function<void()> main,
         uint64_t seed = 1)
{
    RunOptions options;
    options.seed = seed;
    options.subscribers.push_back(&detector);
    return run(std::move(main), options);
}

TEST(RaceDetector, DetectsPlainWriteWriteRace)
{
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                x.store(1);
                wg.done();
            });
        }
        wg.wait();
    });
    EXPECT_TRUE(detector.racedOn("x"));
}

TEST(RaceDetector, DetectsReadWriteRace)
{
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        WaitGroup wg;
        wg.add(1);
        go([&] {
            x.store(7);
            wg.done();
        });
        (void)x.load(); // main reads concurrently
        wg.wait();
    });
    EXPECT_TRUE(detector.racedOn("x"));
}

TEST(RaceDetector, ReadReadIsNotARace)
{
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x", 5);
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                (void)x.load();
                wg.done();
            });
        }
        wg.wait();
    });
    EXPECT_FALSE(detector.racedOn("x"));
}

TEST(RaceDetector, SpawnOrdersParentBeforeChild)
{
    // parent writes, then spawns child that reads: no race.
    Detector detector;
    Shared<int> x("x"); // outlives the run (child may run in drain)
    runRaced(detector, [&] {
        x.store(1);
        go([&] { (void)x.load(); });
        yield();
    });
    EXPECT_FALSE(detector.racedOn("x"));
}

TEST(RaceDetector, MutexSuppressesRace)
{
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        Mutex mu;
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                mu.lock();
                x.update([](int &v) { v++; });
                mu.unlock();
                wg.done();
            });
        }
        wg.wait();
    });
    EXPECT_FALSE(detector.racedOn("x"));
}

TEST(RaceDetector, UnprotectedCounterRaces)
{
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                x.update([](int &v) { v++; });
                wg.done();
            });
        }
        wg.wait();
    });
    EXPECT_TRUE(detector.racedOn("x"));
}

TEST(RaceDetector, ChannelSendRecvCreatesHappensBefore)
{
    // Message passing done right: write -> send -> recv -> read.
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        Chan<Unit> ch = makeChan<Unit>();
        go([&, ch] {
            x.store(42);
            ch.send(Unit{});
        });
        ch.recv();
        EXPECT_EQ(x.load(), 42);
    });
    EXPECT_FALSE(detector.racedOn("x"));
}

TEST(RaceDetector, BufferedChannelAlsoOrders)
{
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        Chan<int> ch = makeChan<int>(1);
        go([&, ch] {
            x.store(1);
            ch.send(0);
        });
        ch.recv();
        (void)x.load();
    });
    EXPECT_FALSE(detector.racedOn("x"));
}

TEST(RaceDetector, WaitGroupDoneWaitOrders)
{
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        WaitGroup wg;
        wg.add(1);
        go([&] {
            x.store(9);
            wg.done();
        });
        wg.wait();
        (void)x.load();
    });
    EXPECT_FALSE(detector.racedOn("x"));
}

TEST(RaceDetector, OnceOrdersInitialization)
{
    Detector detector;
    runRaced(detector, [] {
        Shared<int> config("config");
        Once once;
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                once.doOnce([&] { config.store(1); });
                (void)config.load();
                wg.done();
            });
        }
        wg.wait();
    });
    EXPECT_FALSE(detector.racedOn("config"));
}

TEST(RaceDetector, AtomicsAreSynchronization)
{
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        Atomic<int> ready(0);
        go([&] {
            x.store(5);
            ready.store(1);
        });
        while (ready.load() == 0)
            yield();
        (void)x.load();
    });
    EXPECT_FALSE(detector.racedOn("x"));
}

TEST(RaceDetector, CloseRecvOrders)
{
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        Chan<Unit> done = makeChan<Unit>();
        go([&, done] {
            x.store(3);
            done.close();
        });
        done.recv(); // returns !ok after close
        (void)x.load();
    });
    EXPECT_FALSE(detector.racedOn("x"));
}

TEST(RaceDetector, NoFalsePositiveOnSequentialReuse)
{
    // Same goroutine touching a variable repeatedly never races.
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        for (int i = 0; i < 100; ++i)
            x.update([](int &v) { v++; });
        EXPECT_EQ(x.raw(), 100);
    });
    EXPECT_FALSE(detector.racedOn("x"));
    EXPECT_TRUE(detector.reports().empty());
}

TEST(RaceDetector, ReportsAreDrainedIntoRunReport)
{
    Detector detector;
    RunReport report = runRaced(detector, [] {
        Shared<int> x("x");
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                x.store(1);
                wg.done();
            });
        }
        wg.wait();
    });
    ASSERT_FALSE(report.raceMessages.empty());
    EXPECT_NE(report.raceMessages[0].find("DATA RACE"),
              std::string::npos);
    EXPECT_NE(report.raceMessages[0].find("\"x\""), std::string::npos);
}

TEST(RaceDetector, AnonymousFunctionCaptureRace)
{
    // The Figure 8 shape: loop variable captured by reference.
    Detector detector;
    runRaced(detector, [] {
        Shared<int> i("loop-var");
        WaitGroup wg;
        wg.add(5);
        for (int k = 17; k <= 21; ++k) {
            i.store(k);
            go([&] {
                (void)i.load(); // child reads the shared loop var
                wg.done();
            });
        }
        wg.wait();
    });
    EXPECT_TRUE(detector.racedOn("loop-var"));
}

TEST(RaceDetector, ShadowHistoryBoundCausesMisses)
{
    // The paper's "only four shadow words" miss mode: goroutine A
    // writes x once and then reads it several times; A's own reads
    // evict the write from a depth-1 history. When unordered
    // goroutine B then reads x, the surviving cells are all reads, so
    // the true write/read race is missed. A deep history keeps the
    // write and catches it. bench_ablation_shadow measures this at
    // scale.
    auto detected = [](size_t depth) {
        Detector detector(depth);
        RunOptions options;
        options.subscribers.push_back(&detector);
        options.policy = SchedPolicy::Fifo;
        options.preemptProb = 0.0;
        Shared<int> x("x");
        run([&] {
            go([&] {
                x.store(1);
                for (int i = 0; i < 6; ++i)
                    (void)x.load(); // evicts the write at depth 1
            });
            go([&] { (void)x.load(); }); // races with the write
            yield();
            yield();
        }, options);
        return detector.racedOn("x");
    };
    EXPECT_FALSE(detected(1)); // bounded history misses the race
    EXPECT_TRUE(detected(8));  // deep history catches it
}

TEST(RaceDetector, DepthOneStillCatchesAdjacentRace)
{
    Detector detector(1);
    RunOptions options;
    options.subscribers.push_back(&detector);
    run([] {
        Shared<int> x("x");
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                x.store(1);
                wg.done();
            });
        }
        wg.wait();
    }, options);
    EXPECT_TRUE(detector.racedOn("x"));
}

TEST(RaceDetector, LoopedRaceIsDeduplicatedPerPair)
{
    // A racy counter bumped in a loop produces thousands of racy
    // accesses but only a handful of (first, second) goroutine/kind
    // combinations; the per-object dedup must collapse them.
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                for (int k = 0; k < 200; ++k)
                    x.update([](int &v) { v++; });
                wg.done();
            });
        }
        wg.wait();
    });
    ASSERT_TRUE(detector.racedOn("x"));
    ASSERT_LE(detector.reports().size(), detector.reportLimit());
    for (size_t i = 0; i < detector.reports().size(); ++i) {
        for (size_t j = i + 1; j < detector.reports().size(); ++j) {
            const auto &a = detector.reports()[i];
            const auto &b = detector.reports()[j];
            EXPECT_FALSE(a.firstGid == b.firstGid &&
                         a.firstWrite == b.firstWrite &&
                         a.secondGid == b.secondGid &&
                         a.secondWrite == b.secondWrite)
                << "duplicate combo reported at " << i << "," << j;
        }
    }
}

TEST(RaceDetector, ReportLimitCapsPerObjectReports)
{
    Detector detector;
    detector.setReportLimit(1);
    EXPECT_EQ(detector.reportLimit(), 1u);
    runRaced(detector, [] {
        Shared<int> x("x");
        WaitGroup wg;
        wg.add(3);
        for (int i = 0; i < 3; ++i) {
            go([&] {
                for (int k = 0; k < 50; ++k)
                    x.update([](int &v) { v++; });
                wg.done();
            });
        }
        wg.wait();
    });
    EXPECT_EQ(detector.reports().size(), 1u);
}

TEST(RaceDetector, ShadowDepthAboveInlineCapIsHonored)
{
    // The former fixed-size history silently truncated any requested
    // depth to 8 cells; deep histories now live in the cell slab.
    Detector deep(16);
    EXPECT_EQ(deep.shadowDepth(), 16u);
    EXPECT_EQ(Detector(Detector::kMaxShadowDepth + 100).shadowDepth(),
              Detector::kMaxShadowDepth);

    // A write followed by 12 same-goroutine reads is evicted from an
    // 8-cell history but must survive a 16-cell one.
    auto detected = [](size_t depth) {
        Detector detector(depth);
        RunOptions options;
        options.subscribers.push_back(&detector);
        options.policy = SchedPolicy::Fifo;
        options.preemptProb = 0.0;
        Shared<int> x("x");
        run([&] {
            go([&] {
                x.store(1);
                for (int i = 0; i < 12; ++i)
                    (void)x.load();
            });
            go([&] { (void)x.load(); });
            yield();
            yield();
        }, options);
        return detector.racedOn("x");
    };
    EXPECT_FALSE(detected(8));
    EXPECT_TRUE(detected(16));
}

TEST(RaceDetector, ResetReusesDetectorAcrossRuns)
{
    auto racy = [] {
        Shared<int> x("x");
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                x.store(1);
                wg.done();
            });
        }
        wg.wait();
    };
    auto clean = [] {
        Shared<int> y("y");
        Mutex mu;
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                mu.lock();
                y.update([](int &v) { v++; });
                mu.unlock();
                wg.done();
            });
        }
        wg.wait();
    };

    Detector reused;
    runRaced(reused, racy);
    const size_t first_count = reused.reports().size();
    EXPECT_TRUE(reused.racedOn("x"));

    reused.reset();
    runRaced(reused, clean);
    EXPECT_TRUE(reused.reports().empty()) << "stale state leaked";

    reused.reset();
    runRaced(reused, racy);
    EXPECT_TRUE(reused.racedOn("x"));
    EXPECT_EQ(reused.reports().size(), first_count);

    // reset(depth) also retargets the history depth.
    reused.reset(32);
    EXPECT_EQ(reused.shadowDepth(), 32u);
}

class RaceSeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RaceSeedSweep, DetectionIsScheduleIndependent)
{
    // Happens-before detection must flag the race no matter which
    // interleaving actually executed (unlike manifestation).
    Detector detector;
    runRaced(detector, [] {
        Shared<int> x("x");
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                x.update([](int &v) { v += 1; });
                wg.done();
            });
        }
        wg.wait();
    }, GetParam());
    EXPECT_TRUE(detector.racedOn("x"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaceSeedSweep,
                         ::testing::Range<uint64_t>(0, 12));

// ---------------------------------------------------------------------
// Clock lifecycle: the structures that make -race O(live goroutines).
// ---------------------------------------------------------------------

TEST(RacePtrTable, EraseCompactsBackToLiveSize)
{
    // A soak run touches millions of addresses/gids but keeps only
    // thousands live; after the dead ones are erased the table must
    // return to O(live) capacity, not remember its high-water mark.
    race::PtrTable<uint32_t, uint64_t> table;
    constexpr uint64_t kTotal = 100000;
    constexpr uint64_t kLive = 100;
    for (uint64_t gid = 1; gid <= kTotal; ++gid)
        table[gid] = static_cast<uint32_t>(gid);
    ASSERT_GE(table.capacity(), kTotal);
    for (uint64_t gid = 1; gid <= kTotal - kLive; ++gid)
        EXPECT_TRUE(table.erase(gid));
    EXPECT_EQ(table.size(), kLive);
    // The final compaction may fire while a few thousand entries are
    // still live, so the floor is O(live) with constant slack — what
    // matters is that the 100k-entry footprint is gone.
    EXPECT_LE(table.capacity(), 1024u);
    // Survivors are intact and findable after all that rehashing.
    for (uint64_t gid = kTotal - kLive + 1; gid <= kTotal; ++gid) {
        auto *v = table.find(gid);
        ASSERT_NE(v, nullptr) << gid;
        EXPECT_EQ(*v, static_cast<uint32_t>(gid));
    }
    EXPECT_EQ(table.find(1), nullptr);
    EXPECT_FALSE(table.erase(1)); // already gone
}

TEST(RacePtrTable, TombstonesAreReusedByInsert)
{
    race::PtrTable<uint32_t, uint64_t> table;
    for (uint64_t gid = 1; gid <= 8; ++gid)
        table[gid] = 7;
    const size_t cap = table.capacity();
    // Erase/insert cycles at steady state must not grow the table.
    for (int round = 0; round < 1000; ++round) {
        table.erase(1 + (round % 8));
        table[1 + (round % 8)] = 9;
    }
    EXPECT_EQ(table.size(), 8u);
    EXPECT_EQ(table.capacity(), cap);
}

TEST(RaceVectorClock, SparseSlotsMaterializeOnlyTheirChunks)
{
    race::ChunkPool pool;
    race::VectorClock vc;
    vc.bindPool(&pool);
    vc.set(5, 10);
    vc.set(1000, 3);
    EXPECT_EQ(vc.get(5), 10u);
    EXPECT_EQ(vc.get(1000), 3u);
    EXPECT_EQ(vc.get(999), 0u);  // same chunk, untouched slot
    EXPECT_EQ(vc.get(5000), 0u); // never-materialized chunk
    EXPECT_EQ(vc.chunkCount(), 2u); // not 1000/64 + 1
}

TEST(RaceVectorClock, CopySharesChunksJoinUnsharesOnWrite)
{
    race::ChunkPool pool;
    race::VectorClock a;
    a.bindPool(&pool);
    a.set(1, 5);
    a.set(200, 7);
    const size_t before = pool.chunksLive();

    // COW copy: no new chunks, just refcount bumps.
    race::VectorClock b;
    b.bindPool(&pool);
    b.copyFrom(a);
    EXPECT_EQ(pool.chunksLive(), before);
    EXPECT_EQ(b.get(1), 5u);
    EXPECT_EQ(b.get(200), 7u);

    // Join that changes nothing stays shared and reports dominance.
    EXPECT_TRUE(b.joinFrom(a));
    EXPECT_EQ(pool.chunksLive(), before);

    // Writing through the copy unshares only the written chunk and
    // leaves the original untouched.
    b.tick(1);
    EXPECT_EQ(b.get(1), 6u);
    EXPECT_EQ(a.get(1), 5u);
    EXPECT_EQ(pool.chunksLive(), before + 1);

    // a lags b only: a ⊑ b, so the join reports dominance and lifts
    // a's lagging component.
    EXPECT_TRUE(a.joinFrom(b));
    EXPECT_EQ(a.get(1), 6u);
    EXPECT_TRUE(a.leq(b));

    // Diverge them: a advances at 200, b at a fresh chunk (300).
    a.tick(200);
    EXPECT_FALSE(a.leq(b));
    b.tick(300);
    EXPECT_FALSE(b.joinFrom(a)); // b had 300 that a lacks: no dominance
    EXPECT_EQ(b.get(200), a.get(200)); // but it picked up a's advance
    EXPECT_TRUE(a.leq(b)); // and now dominates a
}

TEST(RaceDetector, ShadowStateReclaimedOnFree)
{
    // Churning through tracked variables must not accumulate shadow
    // entries: each destruction erases its address's state.
    Detector detector;
    runRaced(detector, [] {
        for (int i = 0; i < 200; ++i) {
            auto x = std::make_unique<Shared<int>>("churn");
            x->store(i);
            (void)x->load();
        }
    });
    EXPECT_GE(detector.shadowFreed(), 200u);
    EXPECT_LE(detector.shadowEntries(), 2u);
}

TEST(RaceDetector, SlotSpaceTracksLiveNotTotalGoroutines)
{
    constexpr int kSequential = 100;
    auto sequentialChurn = [] {
        for (int i = 0; i < kSequential; ++i) {
            auto done = makeChan<Unit>();
            go([done] { done.send(Unit{}); });
            done.recv();
            // Let the worker run past its handoff and emit GoFinish
            // so its slot retires before the next spawn.
            yield();
            yield();
        }
    };

    Detector recycled;
    recycled.setRecycle(true);
    runRaced(recycled, sequentialChurn);
    EXPECT_LE(recycled.slotSpace(), 8u);

    Detector dense;
    dense.setRecycle(false);
    runRaced(dense, sequentialChurn);
    EXPECT_EQ(dense.slotSpace(), 1u + kSequential);
}

TEST(RaceDetector, FootprintPublishedThroughMetricsSink)
{
    Detector detector;
    obs::MetricsSink metrics;
    RunOptions options;
    options.subscribers = {&detector, &metrics};
    RunReport report = run([] {
        Shared<int> x("x");
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                x.update([](int &v) { v += 1; });
                wg.done();
            });
        }
        wg.wait();
    }, options);
    ASSERT_TRUE(report.metrics.collected);
    ASSERT_TRUE(report.metrics.detector.collected);
    const auto &fp = report.metrics.detector;
    EXPECT_GE(fp.peakClockSlots, 3u); // main + 2 workers overlapped
    EXPECT_GE(fp.slotSpace, fp.peakClockSlots);
    EXPECT_GE(fp.peakShadowEntries, 1u);
    EXPECT_GT(fp.arenaBytes, 0u);
    // The detector block reaches the JSON artifact.
    EXPECT_NE(report.metrics.json().find("\"detector\""),
              std::string::npos);
}

} // namespace
} // namespace golite
