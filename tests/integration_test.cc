/**
 * @file
 * Cross-module integration tests: realistic programs combining
 * goroutines, channels, select, sync, time, context, pipes, and the
 * detectors, driven across seed sweeps. These exercise exactly the
 * combinations the paper says breed bugs ("the mixed usage of
 * message passing and other new semantics").
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "golite/golite.hh"

namespace golite
{
namespace
{

using gotime::kMillisecond;

class Seeded : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(Seeded, WorkerPoolDrainsAllJobsUnderAnySchedule)
{
    // Classic bounded worker pool with clean shutdown: jobs channel,
    // results channel, WaitGroup-close handshake.
    RunOptions options;
    options.seed = GetParam();
    int result_sum = 0;
    RunReport report = run([&] {
        const int jobs_n = 24, workers_n = 4;
        Chan<int> jobs = makeChan<int>(8);
        Chan<int> results = makeChan<int>(8);
        WaitGroup wg;
        wg.add(workers_n);
        for (int w = 0; w < workers_n; ++w) {
            go("worker", [jobs, results, &wg] {
                for (;;) {
                    auto j = jobs.recv();
                    if (!j.ok)
                        break;
                    results.send(j.value * 2);
                }
                wg.done();
            });
        }
        go("closer", [results, &wg] {
            wg.wait();
            results.close();
        });
        go("feeder", [jobs, jobs_n] {
            for (int i = 1; i <= jobs_n; ++i)
                jobs.send(i);
            jobs.close();
        });
        for (;;) {
            auto r = results.recv();
            if (!r.ok)
                break;
            result_sum += r.value;
        }
    }, options);
    EXPECT_EQ(result_sum, 2 * (24 * 25) / 2);
    EXPECT_TRUE(report.clean()) << report.describe();
}

TEST_P(Seeded, TimedMutexConvoyNeverLosesIncrements)
{
    RunOptions options;
    options.seed = GetParam();
    int counter = 0;
    RunReport report = run([&] {
        Mutex mu;
        WaitGroup wg;
        wg.add(6);
        for (int g = 0; g < 6; ++g) {
            go([&, g] {
                for (int i = 0; i < 10; ++i) {
                    gotime::sleep((g + 1) * kMillisecond);
                    mu.lock();
                    int tmp = counter;
                    yield();
                    counter = tmp + 1;
                    mu.unlock();
                }
                wg.done();
            });
        }
        wg.wait();
    }, options);
    EXPECT_EQ(counter, 60);
    EXPECT_TRUE(report.clean());
}

TEST_P(Seeded, ContextTimeoutCancelsFanout)
{
    // A request fans out to three backends; the context deadline
    // expires before the slowest answers. Everything must shut down
    // without leaks.
    RunOptions options;
    options.seed = GetParam();
    int answers = 0;
    RunReport report = run([&] {
        auto [request_ctx, cancel] =
            ctx::withTimeout(ctx::background(), 25 * kMillisecond);
        Chan<int> replies = makeChan<int>(3); // buffered: no leak
        const int latency_ms[3] = {10, 20, 80};
        for (int b = 0; b < 3; ++b) {
            go("backend", [replies, ms = latency_ms[b], b] {
                gotime::sleep(ms * kMillisecond);
                replies.trySend(b);
            });
        }
        bool deadline = false;
        while (!deadline) {
            Select()
                .recv<int>(replies, [&](int, bool) { answers++; })
                .recv<Unit>(request_ctx->done(),
                            [&](Unit, bool) { deadline = true; })
                .run();
        }
        cancel();
        gotime::sleep(100 * kMillisecond); // let the slow one finish
    }, options);
    EXPECT_EQ(answers, 2); // the 10ms and 20ms backends
    EXPECT_TRUE(report.clean()) << report.describe();
}

TEST_P(Seeded, PipelineOfPipesStreamsInOrder)
{
    // producer -> pipe -> uppercaser -> pipe -> consumer.
    RunOptions options;
    options.seed = GetParam();
    std::string assembled;
    RunReport report = run([&] {
        auto [r1, w1] = goio::makePipe();
        auto [r2, w2] = goio::makePipe();
        go("producer", [w = w1]() mutable {
            w.write("abc");
            w.write("def");
            w.close();
        });
        go("transformer", [r = r1, w = w2]() mutable {
            for (;;) {
                std::string chunk;
                auto res = r.read(chunk);
                for (char &c : chunk)
                    c = static_cast<char>(c - 'a' + 'A');
                if (!chunk.empty())
                    w.write(chunk);
                if (!res.ok())
                    break;
            }
            w.close();
        });
        std::string chunk;
        for (;;) {
            auto res = r2.read(chunk);
            assembled += chunk;
            if (!res.ok())
                break;
        }
    }, options);
    EXPECT_EQ(assembled, "ABCDEF");
    EXPECT_TRUE(report.clean()) << report.describe();
}

TEST_P(Seeded, SelectFairnessUnderLoad)
{
    // Two producers of equal rate through one select: both must make
    // progress (no starvation) under every seed.
    RunOptions options;
    options.seed = GetParam();
    int from_a = 0, from_b = 0;
    run([&] {
        Chan<int> a = makeChan<int>();
        Chan<int> b = makeChan<int>();
        go([a] {
            for (int i = 0; i < 20; ++i)
                a.send(i);
        });
        go([b] {
            for (int i = 0; i < 20; ++i)
                b.send(i);
        });
        for (int i = 0; i < 40; ++i) {
            Select()
                .recv<int>(a, [&](int, bool) { from_a++; })
                .recv<int>(b, [&](int, bool) { from_b++; })
                .run();
        }
    }, options);
    EXPECT_EQ(from_a, 20);
    EXPECT_EQ(from_b, 20);
}

TEST_P(Seeded, OncePlusChannelsInitializeExactlyOnce)
{
    RunOptions options;
    options.seed = GetParam();
    int inits = 0;
    RunReport report = run([&] {
        Once once;
        Chan<Unit> ready = makeChan<Unit>();
        WaitGroup wg;
        wg.add(5);
        for (int g = 0; g < 5; ++g) {
            go([&] {
                once.doOnce([&] {
                    inits++;
                    ready.close(); // broadcast "initialized"
                });
                ready.recv(); // closed channel: returns immediately
                wg.done();
            });
        }
        wg.wait();
    }, options);
    EXPECT_EQ(inits, 1);
    EXPECT_TRUE(report.clean());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded, ::testing::Range<uint64_t>(0, 10));

TEST(Integration, DescribeReportsLeaksLikeAGoroutineDump)
{
    RunReport report = run([] {
        Chan<int> ch = makeChan<int>();
        go("stuck-sender", [ch] { ch.send(1); });
        yield();
    });
    const std::string dump = report.describe();
    EXPECT_NE(dump.find("stuck-sender"), std::string::npos);
    EXPECT_NE(dump.find("chan send"), std::string::npos);
    EXPECT_NE(dump.find("still blocked"), std::string::npos);
}

TEST(Integration, DescribeReportsGlobalDeadlock)
{
    RunReport report = run([] { makeChan<int>().recv(); });
    EXPECT_NE(report.describe().find(
                  "all goroutines are asleep - deadlock!"),
              std::string::npos);
}

TEST(Integration, AllDetectorsComposeOnARealWorkload)
{
    race::Detector racer;
    vet::BlockingVet vet_checker;
    RunOptions options;
    options.subscribers = {&racer, &vet_checker};
    int processed = 0;
    RunReport report = run([&] {
        Mutex mu;
        Chan<int> work = makeChan<int>(4);
        WaitGroup wg;
        wg.add(3);
        for (int w = 0; w < 3; ++w) {
            go([&] {
                for (;;) {
                    auto j = work.recv();
                    if (!j.ok)
                        break;
                    mu.lock();
                    processed++;
                    mu.unlock();
                }
                wg.done();
            });
        }
        for (int i = 0; i < 12; ++i)
            work.send(i);
        work.close();
        wg.wait();
    }, options);
    EXPECT_EQ(processed, 12);
    EXPECT_TRUE(report.clean());
    EXPECT_TRUE(racer.reports().empty());
    EXPECT_TRUE(vet_checker.reports().empty());
}

TEST(Integration, TickerDrivenWorkerWithCleanShutdown)
{
    int ticks_handled = 0;
    RunReport report = run([&] {
        gotime::Ticker ticker = gotime::newTicker(10 * kMillisecond);
        Chan<Unit> stop = makeChan<Unit>();
        WaitGroup wg;
        wg.add(1);
        go("ticker-worker", [&, stop] {
            for (;;) {
                bool done = false;
                Select()
                    .recv<Unit>(stop, [&](Unit, bool) { done = true; })
                    .recv<gotime::Time>(ticker.c,
                                        [&](gotime::Time, bool) {
                                            ticks_handled++;
                                        })
                    .run();
                if (done)
                    break;
            }
            wg.done();
        });
        gotime::sleep(55 * kMillisecond);
        stop.close();
        wg.wait();
        ticker.stop();
    });
    EXPECT_GE(ticks_handled, 4);
    EXPECT_TRUE(report.clean()) << report.describe();
}

} // namespace
} // namespace golite
