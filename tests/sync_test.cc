/**
 * @file
 * sync package tests: Mutex (incl. the Go panic and double-lock
 * semantics), writer-priority RWMutex (incl. the Go-specific deadlock
 * interleaving from Section 5.1.1), WaitGroup, Once, Cond, Atomic.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "golite/golite.hh"

namespace golite
{
namespace
{

TEST(Mutex, ProvidesMutualExclusion)
{
    int counter = 0;
    RunReport report = run([&] {
        Mutex mu;
        WaitGroup wg;
        wg.add(4);
        for (int i = 0; i < 4; ++i) {
            go([&] {
                for (int j = 0; j < 100; ++j) {
                    mu.lock();
                    int tmp = counter;
                    yield(); // widen the window: lock must protect us
                    counter = tmp + 1;
                    mu.unlock();
                }
                wg.done();
            });
        }
        wg.wait();
    });
    EXPECT_EQ(counter, 400);
    EXPECT_TRUE(report.clean());
}

TEST(Mutex, DoubleLockSelfDeadlocks)
{
    // Go's Mutex is not reentrant: the classic double-lock bug.
    RunReport report = run([] {
        Mutex mu;
        mu.lock();
        mu.lock();
    });
    EXPECT_TRUE(report.globalDeadlock);
}

TEST(Mutex, UnlockOfUnlockedPanics)
{
    RunReport report = run([] {
        Mutex mu;
        mu.unlock();
    });
    EXPECT_TRUE(report.panicked);
    EXPECT_EQ(report.panicMessage, "sync: unlock of unlocked mutex");
}

TEST(Mutex, TryLock)
{
    run([] {
        Mutex mu;
        EXPECT_TRUE(mu.tryLock());
        EXPECT_FALSE(mu.tryLock());
        mu.unlock();
        EXPECT_TRUE(mu.tryLock());
        mu.unlock();
    });
}

TEST(Mutex, HandoffIsFifo)
{
    std::vector<int> order;
    Mutex mu; // outlives the run: lockers can finish during drain
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    run([&] {
        mu.lock();
        for (int i = 0; i < 3; ++i) {
            go([&, i] {
                mu.lock();
                order.push_back(i);
                mu.unlock();
            });
        }
        for (int i = 0; i < 6; ++i)
            yield(); // all three park on the mutex
        mu.unlock();
    }, options);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(RWMutex, ConcurrentReadersAllowed)
{
    int active_peak = 0;
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    run([&] {
        RWMutex mu;
        int active = 0;
        WaitGroup wg;
        wg.add(3);
        for (int i = 0; i < 3; ++i) {
            go([&] {
                mu.rlock();
                active++;
                active_peak = std::max(active_peak, active);
                yield();
                active--;
                mu.runlock();
                wg.done();
            });
        }
        wg.wait();
    }, options);
    EXPECT_GE(active_peak, 2);
}

TEST(RWMutex, WriterExcludesReadersAndWriters)
{
    std::vector<std::string> trace;
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    run([&] {
        RWMutex mu;
        mu.lock();
        go([&] {
            mu.rlock();
            trace.push_back("reader");
            mu.runlock();
        });
        go([&] {
            mu.lock();
            trace.push_back("writer2");
            mu.unlock();
        });
        yield();
        yield();
        trace.push_back("unlock");
        mu.unlock();
        for (int i = 0; i < 6; ++i)
            yield();
    }, options);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0], "unlock");
}

TEST(RWMutex, GoWriterPriorityDeadlock)
{
    // Section 5.1.1: th-A holds a read lock; th-B requests the write
    // lock; th-A's *second* read lock queues behind the writer. In C
    // (reader-priority pthread_rwlock_t) this would succeed; in Go it
    // deadlocks. 5 of the paper's bugs have this shape.
    auto mu = std::make_shared<RWMutex>(); // outlives any schedule
    RunOptions options;
    options.policy = SchedPolicy::Fifo; // writer queues at the yield
    RunReport report = run([mu] {
        mu->rlock();
        go([mu] { mu->lock(); }); // writer waits for the reader
        yield();
        mu->rlock(); // queues behind the pending writer: deadlock
    }, options);
    EXPECT_TRUE(report.globalDeadlock);
}

TEST(RWMutex, RUnlockOfUnlockedPanics)
{
    RunReport report = run([] {
        RWMutex mu;
        mu.runlock();
    });
    EXPECT_TRUE(report.panicked);
}

TEST(RWMutex, WriterUnlockReleasesQueuedReaders)
{
    int readers_ran = 0;
    run([&] {
        RWMutex mu;
        mu.lock();
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                mu.rlock();
                readers_ran++;
                mu.runlock();
                wg.done();
            });
        }
        yield();
        yield();
        mu.unlock();
        wg.wait();
    });
    EXPECT_EQ(readers_ran, 2);
}

TEST(WaitGroup, WaitBlocksUntilAllDone)
{
    int finished = 0;
    RunReport report = run([&] {
        WaitGroup wg;
        wg.add(5);
        for (int i = 0; i < 5; ++i) {
            go([&] {
                yield();
                finished++;
                wg.done();
            });
        }
        wg.wait();
        EXPECT_EQ(finished, 5);
    });
    EXPECT_TRUE(report.clean());
}

TEST(WaitGroup, WaitWithZeroCountReturnsImmediately)
{
    bool reached = false;
    run([&] {
        WaitGroup wg;
        wg.wait();
        reached = true;
    });
    EXPECT_TRUE(reached);
}

TEST(WaitGroup, NegativeCounterPanics)
{
    RunReport report = run([] {
        WaitGroup wg;
        wg.done();
    });
    EXPECT_TRUE(report.panicked);
    EXPECT_EQ(report.panicMessage, "sync: negative WaitGroup counter");
}

TEST(WaitGroup, MissingDoneBlocksForever)
{
    RunReport report = run([] {
        WaitGroup wg;
        wg.add(1);
        wg.wait();
    });
    EXPECT_TRUE(report.globalDeadlock);
}

TEST(WaitGroup, MultipleWaiters)
{
    int released = 0;
    WaitGroup wg; // outlives the run: waiters can finish during drain
    run([&] {
        wg.add(1);
        for (int i = 0; i < 2; ++i) {
            go([&] {
                wg.wait();
                released++;
            });
        }
        yield();
        yield();
        wg.done();
        for (int i = 0; i < 4; ++i)
            yield();
    });
    EXPECT_EQ(released, 2);
}

TEST(Once, RunsExactlyOnce)
{
    int runs = 0;
    run([&] {
        Once once;
        WaitGroup wg;
        wg.add(10);
        for (int i = 0; i < 10; ++i) {
            go([&] {
                once.doOnce([&] { runs++; });
                wg.done();
            });
        }
        wg.wait();
    });
    EXPECT_EQ(runs, 1);
}

TEST(Once, ConcurrentCallersWaitForTheFirst)
{
    // A second caller must not return before fn finished.
    std::vector<std::string> trace;
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    run([&] {
        Once once;
        go([&] {
            once.doOnce([&] {
                trace.push_back("f-start");
                yield();
                yield();
                trace.push_back("f-end");
            });
        });
        go([&] {
            yield();
            once.doOnce([&] { trace.push_back("never"); });
            trace.push_back("second-returned");
        });
        for (int i = 0; i < 10; ++i)
            yield();
    }, options);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0], "f-start");
    EXPECT_EQ(trace[1], "f-end");
    EXPECT_EQ(trace[2], "second-returned");
}

TEST(Cond, SignalWakesOneWaiter)
{
    int woken = 0;
    Mutex mu;      // outlive the run: one waiter leaks by design
    Cond cond(mu);
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    run([&] {
        for (int i = 0; i < 2; ++i) {
            go([&] {
                mu.lock();
                cond.wait();
                woken++;
                mu.unlock();
            });
        }
        for (int i = 0; i < 6; ++i)
            yield();
        mu.lock();
        cond.signal();
        mu.unlock();
        for (int i = 0; i < 6; ++i)
            yield();
    }, options);
    EXPECT_EQ(woken, 1);
}

TEST(Cond, BroadcastWakesAll)
{
    int woken = 0;
    Mutex mu;
    Cond cond(mu);
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    RunReport report = run([&] {
        for (int i = 0; i < 3; ++i) {
            go([&] {
                mu.lock();
                cond.wait();
                woken++;
                mu.unlock();
            });
        }
        for (int i = 0; i < 9; ++i)
            yield();
        mu.lock();
        cond.broadcast();
        mu.unlock();
        for (int i = 0; i < 9; ++i)
            yield();
    }, options);
    EXPECT_EQ(woken, 3);
    EXPECT_TRUE(report.clean());
}

TEST(Cond, MissingSignalBlocksForever)
{
    // Two of the paper's blocking bugs: Cond.Wait with no Signal.
    RunReport report = run([] {
        Mutex mu;
        Cond cond(mu);
        mu.lock();
        cond.wait();
    });
    EXPECT_TRUE(report.globalDeadlock);
}

TEST(Cond, WaitWithoutMutexPanics)
{
    RunReport report = run([] {
        Mutex mu;
        Cond cond(mu);
        cond.wait();
    });
    EXPECT_TRUE(report.panicked);
}

TEST(Atomic, LoadStoreAddCas)
{
    run([] {
        Atomic<int64_t> a(10);
        EXPECT_EQ(a.load(), 10);
        a.store(20);
        EXPECT_EQ(a.load(), 20);
        EXPECT_EQ(a.add(5), 25);
        EXPECT_TRUE(a.compareAndSwap(25, 30));
        EXPECT_FALSE(a.compareAndSwap(25, 40));
        EXPECT_EQ(a.load(), 30);
    });
}

TEST(Atomic, CountsAcrossGoroutines)
{
    run([] {
        Atomic<int64_t> total(0);
        WaitGroup wg;
        wg.add(8);
        for (int i = 0; i < 8; ++i) {
            go([&] {
                for (int j = 0; j < 50; ++j)
                    total.add(1);
                wg.done();
            });
        }
        wg.wait();
        EXPECT_EQ(total.load(), 400);
    });
}

} // namespace
} // namespace golite
