/**
 * @file
 * Soak-harness tests: the open-loop generator against the netpoll echo
 * server under real time. These assert statistical outcomes (all
 * arrivals answered, latency bounded below by the service time,
 * goroutine concurrency in the expected band), not schedules.
 */

#include <gtest/gtest.h>

#include "golite/golite.hh"

namespace golite
{
namespace
{

TEST(Soak, SmokeAllRequestsAnswered)
{
    load::SoakOptions opts;
    opts.connections = 8;
    opts.targetRps = 2000;
    opts.durationNs = 400 * gotime::kMillisecond;
    opts.serviceTimeNs = 20 * gotime::kMillisecond;
    opts.fanout = 1;
    opts.payloadBytes = 32;
    opts.seed = 7;

    load::SoakResult res = load::runSoak(opts);
    EXPECT_TRUE(res.ok()) << res.report.describe();
    EXPECT_GT(res.requestsSent, 100u);
    EXPECT_EQ(res.responses, res.requestsSent);
    EXPECT_EQ(res.dropped, 0u);
    EXPECT_EQ(res.latency.count(), res.responses);
    // Every reply waited out the 20ms service time; the histogram's
    // 1/64 resolution cannot hide that.
    EXPECT_GE(res.latency.quantile(0.50), opts.serviceTimeNs);
    // rate x service x (1 + fanout) = 2000 * 0.02 * 2 = 80 expected
    // concurrent request goroutines at steady state (plus the fixed
    // per-connection ones); allow generous slack for a loaded box.
    EXPECT_GE(res.peakLiveGoroutines, 40u);
    EXPECT_GT(res.goroutinesCreated, res.requestsSent);
}

TEST(Soak, ThousandsOfConcurrentGoroutines)
{
    // The concurrency knob: modest request rate, long service time,
    // fanout 1 -> ~5000 * 0.2 * 2 = ~2000 live goroutines at peak.
    load::SoakOptions opts;
    opts.connections = 16;
    opts.targetRps = 5000;
    opts.durationNs = 600 * gotime::kMillisecond;
    opts.serviceTimeNs = 200 * gotime::kMillisecond;
    opts.fanout = 1;
    opts.seed = 11;

    load::SoakResult res = load::runSoak(opts);
    EXPECT_TRUE(res.ok()) << res.report.describe();
    EXPECT_GE(res.peakLiveGoroutines, 1000u);
    EXPECT_EQ(res.responses, res.requestsSent);
}

TEST(Soak, BurstsShiftTheTail)
{
    // 5x bursts for 50ms out of every 200ms: the load in a burst
    // exceeds the steady rate, so arrivals queue and p99 >> p50.
    load::SoakOptions opts;
    opts.connections = 8;
    opts.targetRps = 1000;
    opts.durationNs = 600 * gotime::kMillisecond;
    opts.burstEveryNs = 200 * gotime::kMillisecond;
    opts.burstLenNs = 50 * gotime::kMillisecond;
    opts.burstMultiplier = 5.0;
    opts.serviceTimeNs = 5 * gotime::kMillisecond;
    opts.seed = 3;

    load::SoakResult res = load::runSoak(opts);
    EXPECT_TRUE(res.ok()) << res.report.describe();
    // Bursts raise the average rate ~2x over the steady 1000 rps.
    EXPECT_GT(res.requestsSent, 600u);
    EXPECT_GE(res.latency.quantile(0.99), res.latency.quantile(0.50));
}

TEST(Soak, DetectorsRideAlongCleanly)
{
    // The production-concurrency detector configuration: race +
    // waitgraph subscribed to a soak run. The harness itself must be
    // race-free and leak-free under their instrumentation.
    race::Detector race_detector;
    waitgraph::Detector wait_detector;
    load::SoakOptions opts;
    opts.connections = 4;
    opts.targetRps = 500;
    opts.durationNs = 300 * gotime::kMillisecond;
    opts.serviceTimeNs = 10 * gotime::kMillisecond;
    opts.seed = 5;
    opts.subscribers = {&race_detector, &wait_detector};

    load::SoakResult res = load::runSoak(opts);
    EXPECT_TRUE(res.ok()) << res.report.describe();
    EXPECT_TRUE(res.report.raceMessages.empty());
    EXPECT_TRUE(res.report.partialDeadlocks.empty());
}

} // namespace
} // namespace golite
