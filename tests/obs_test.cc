/**
 * @file
 * Observability sinks: Chrome trace-event JSON export
 * (obs::TraceEventSink) and per-run operation counters
 * (obs::MetricsSink).
 *
 * The trace exporter's contract is determinism: timestamps are event
 * ordinals, never wall time, and no pointer value is printed, so a
 * fixed-seed run renders byte-identical JSON on every machine — held
 * down here by an exact golden for a minimal run and a
 * render-twice comparison for a real kernel.
 */

#include <gtest/gtest.h>

#include <string>

#include "golite/golite.hh"

namespace golite
{
namespace
{

size_t
countOccurrences(const std::string &haystack,
                 const std::string &needle)
{
    size_t n = 0;
    for (size_t at = haystack.find(needle);
         at != std::string::npos;
         at = haystack.find(needle, at + needle.size()))
        n++;
    return n;
}

void
workload()
{
    Mutex mu;
    WaitGroup wg;
    race::Shared<int> counter("counter");
    Chan<int> ch = makeChan<int>(1);
    wg.add(2);
    for (int g = 0; g < 2; ++g) {
        go([&] {
            ch.send(g);
            mu.lock();
            counter.update([](int &v) { v++; });
            mu.unlock();
            ch.recv();
            wg.done();
        });
    }
    wg.wait();
}

TEST(TraceEventSink, GoldenMinimalRun)
{
    // The empty program: the synthetic main registration (lane
    // metadata only — no `go` statement to mark), one scheduling
    // slice, one finish. Everything else in the format hangs off
    // these records, so this golden pins field order, phases, lane
    // ids, and ordinal timestamps exactly.
    obs::TraceEventSink sink;
    RunOptions options;
    options.subscribers.push_back(&sink);
    run([] {}, options);

    EXPECT_EQ(sink.json(),
              "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
              "\"tid\":1,\"ts\":0,\"args\":{\"name\":\"g1 main\"}},\n"
              "{\"name\":\"run\",\"ph\":\"B\",\"pid\":1,\"tid\":1,"
              "\"ts\":1},\n"
              "{\"name\":\"finish\",\"ph\":\"i\",\"pid\":1,\"tid\":1,"
              "\"ts\":2,\"s\":\"t\"},\n"
              "{\"name\":\"run\",\"ph\":\"E\",\"pid\":1,\"tid\":1,"
              "\"ts\":3}\n"
              "]}\n");
}

TEST(TraceEventSink, DeterministicAndStructurallyValid)
{
    std::string renders[2];
    for (std::string &out : renders) {
        obs::TraceEventSink sink;
        RunOptions options;
        options.seed = 11;
        options.subscribers.push_back(&sink);
        run(workload, options);
        out = sink.json();
    }
    EXPECT_EQ(renders[0], renders[1]);

    const std::string &doc = renders[0];
    // Every scheduling slice opened is closed, on some lane.
    EXPECT_EQ(countOccurrences(doc, "\"ph\":\"B\""),
              countOccurrences(doc, "\"ph\":\"E\""));
    // One lane-name record per goroutine (main + 2 workers).
    EXPECT_EQ(countOccurrences(doc, "\"thread_name\""), 3u);
    // Channel ops and lock ops made it onto the timeline.
    EXPECT_EQ(countOccurrences(doc, "chan send"), 2u);
    EXPECT_EQ(countOccurrences(doc, "chan recv"), 2u);
    EXPECT_EQ(countOccurrences(doc, "lock acquire (w)"), 2u);
    // Determinism implies no raw pointers in the output.
    EXPECT_EQ(doc.find("0x"), std::string::npos);
}

TEST(TraceEventSink, ClearResetsForReuse)
{
    obs::TraceEventSink sink;
    RunOptions options;
    options.seed = 11;
    options.subscribers.push_back(&sink);
    run(workload, options);
    const std::string first = sink.json();
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    run(workload, options);
    EXPECT_EQ(sink.json(), first);
}

TEST(MetricsSink, CountsSchedulingAndPrimitiveOps)
{
    obs::MetricsSink metrics;
    RunOptions options;
    options.seed = 5;
    options.subscribers.push_back(&metrics);
    RunReport report = run(workload, options);

    ASSERT_TRUE(report.metrics.collected);
    const RunMetrics &m = report.metrics;
    // Schedule-independent counts are exact.
    EXPECT_EQ(m.spawns, report.goroutinesCreated);
    EXPECT_EQ(m.maxLiveGoroutines, 3u);
    EXPECT_EQ(m.chanSends, 2u);
    EXPECT_EQ(m.chanRecvs, 2u);
    EXPECT_EQ(m.lockWriteAcquires, 2u);
    EXPECT_EQ(m.lockReleases, 2u);
    EXPECT_EQ(m.wgDeltas, 3u); // add(2) + two done()
    EXPECT_EQ(m.wgWaits, 1u);
    EXPECT_EQ(m.memReads, 2u);
    EXPECT_EQ(m.memWrites, 2u);
    // Every dispatch tick is one GoDispatch event.
    EXPECT_EQ(m.dispatches, report.ticks);
    EXPECT_GT(m.contextSwitches, 0u);
    EXPECT_LT(m.contextSwitches, m.dispatches);
    // parks equals the per-reason breakdown's total.
    uint64_t by_reason = 0;
    for (uint64_t n : m.blocksByReason)
        by_reason += n;
    EXPECT_EQ(m.parks, by_reason);

    // The JSON emitter is single-line with fixed key order.
    const std::string json = m.json();
    EXPECT_EQ(json.rfind("{\"chanSends\":2,\"chanRecvs\":2,", 0), 0u);
    EXPECT_EQ(json.find('\n'), std::string::npos);
    EXPECT_FALSE(m.describe().empty());
}

TEST(MetricsSink, DoesNotPerturbTheScheduleOrFingerprint)
{
    RunOptions plain;
    plain.seed = 9;
    RunReport without = run(workload, plain);

    obs::MetricsSink metrics;
    RunOptions observed;
    observed.seed = 9;
    observed.subscribers.push_back(&metrics);
    RunReport with = run(workload, observed);

    // Metrics are deliberately outside the fingerprint, and the sink
    // must not change a single scheduling decision.
    EXPECT_EQ(without.fingerprint(), with.fingerprint());
    EXPECT_FALSE(without.metrics.collected);
    EXPECT_TRUE(with.metrics.collected);
}

TEST(MetricsSink, ResetsBetweenRunsWhenReused)
{
    obs::MetricsSink metrics;
    RunOptions options;
    options.seed = 5;
    options.subscribers.push_back(&metrics);
    RunReport first = run(workload, options);
    RunReport second = run(workload, options);
    // Same seed, same program: identical counters — a sink that
    // failed to reset would double them.
    EXPECT_EQ(first.metrics.json(), second.metrics.json());
}

// --- LatencyHistogram ---------------------------------------------

TEST(LatencyHistogram, ExactBelowSixtyFour)
{
    obs::LatencyHistogram h;
    for (int64_t v = 0; v < 64; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 64u);
    EXPECT_EQ(h.minValue(), 0);
    EXPECT_EQ(h.maxValue(), 63);
    // Small values land in exact unit buckets: every quantile is the
    // true order statistic.
    EXPECT_EQ(h.quantile(0.5), 31);
    EXPECT_EQ(h.quantile(1.0), 63);
}

TEST(LatencyHistogram, QuantileErrorWithinOneSixtyFourth)
{
    obs::LatencyHistogram h;
    for (int64_t v = 1; v <= 100'000; ++v)
        h.record(v);
    auto check = [&](double q) {
        const double expected = q * 100'000;
        const int64_t got = h.quantile(q);
        EXPECT_GE(got, static_cast<int64_t>(expected) - 1) << q;
        EXPECT_LE(static_cast<double>(got),
                  expected * (1.0 + 1.0 / 64) + 1) << q;
    };
    check(0.50);
    check(0.90);
    check(0.99);
    check(0.999);
    EXPECT_EQ(h.quantile(1.0), 100'000);
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording)
{
    obs::LatencyHistogram a, b, combined;
    for (int64_t v = 0; v < 5'000; ++v) {
        const int64_t sample = (v * 2'654'435'761LL) % 1'000'000;
        ((v % 2 == 0) ? a : b).record(sample);
        combined.record(sample);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.json(), combined.json());
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity)
{
    obs::LatencyHistogram h, empty;
    h.record(42);
    const std::string before = h.json();
    h.merge(empty);
    EXPECT_EQ(h.json(), before);
    empty.merge(h);
    EXPECT_EQ(empty.json(), h.json());
}

TEST(LatencyHistogram, EmptyAndNegativeInputs)
{
    obs::LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.99), 0);
    EXPECT_EQ(h.minValue(), 0);
    EXPECT_EQ(h.meanValue(), 0);
    h.record(-5); // clamps to zero rather than corrupting a bucket
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.maxValue(), 0);
}

TEST(LatencyHistogram, JsonShapeIsFixed)
{
    obs::LatencyHistogram h;
    h.record(1000);
    const std::string j = h.json();
    EXPECT_EQ(j.find("{\"count\":1,\"minNs\":"), 0u);
    for (const char *key : {"meanNs", "p50Ns", "p90Ns", "p99Ns",
                            "p999Ns", "maxNs"})
        EXPECT_NE(j.find(key), std::string::npos) << key;
}

} // namespace
} // namespace golite
