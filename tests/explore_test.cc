/**
 * @file
 * Systematic explorer tests: exact schedule counts on known-shape
 * programs, bounded-exhaustive *verification* of fixed corpus
 * kernels, exhaustive bug counting on buggy ones, and schedule
 * replay.
 */

#include <gtest/gtest.h>

#include <vector>

#include "corpus/bug.hh"
#include "explore/explorer.hh"
#include "golite/golite.hh"

namespace golite::explore
{
namespace
{

using corpus::findBug;
using corpus::Variant;

std::function<RunReport(const RunOptions &)>
kernelRunner(const char *id, Variant variant)
{
    const corpus::BugCase *bug = findBug(id);
    EXPECT_NE(bug, nullptr) << id;
    return [bug, variant](const RunOptions &options) {
        return bug->run(variant, options).report;
    };
}

TEST(Explorer, SingleGoroutineHasOneSchedule)
{
    ExploreResult result = exploreProgram([] {
        int x = 0;
        for (int i = 0; i < 10; ++i)
            x += i;
        (void)x;
    });
    EXPECT_TRUE(result.exhaustive);
    EXPECT_EQ(result.schedules, 1u);
    EXPECT_EQ(result.clean, 1u);
}

TEST(Explorer, CountsInterleavingsOfTwoYieldFreeGoroutines)
{
    // main spawns A and B then exits; the drain dispatches whichever
    // of {A, B} the scheduler picks first: exactly 2 schedules.
    ExploreResult result = exploreProgram([] {
        go([] {});
        go([] {});
    });
    EXPECT_TRUE(result.exhaustive);
    EXPECT_EQ(result.schedules, 2u);
    EXPECT_EQ(result.clean, 2u);
}

TEST(Explorer, EnumeratesSelectChoices)
{
    // One select with two ready cases: the shuffle is the only
    // decision (a two-element Fisher-Yates has one binary swap).
    int chose_a = 0, chose_b = 0;
    ExploreResult result = exploreProgram([&] {
        Chan<int> a = makeChan<int>(1);
        Chan<int> b = makeChan<int>(1);
        a.send(1);
        b.send(2);
        Select()
            .recv<int>(a, [&](int, bool) { chose_a++; })
            .recv<int>(b, [&](int, bool) { chose_b++; })
            .run();
    });
    EXPECT_TRUE(result.exhaustive);
    EXPECT_EQ(result.schedules, 2u);
    EXPECT_EQ(chose_a, 1);
    EXPECT_EQ(chose_b, 1);
}

TEST(Explorer, ProvesFixedKernelSafeOverAllSchedules)
{
    // Bounded-exhaustive verification: boltdb-240's patched ordering
    // can never deadlock, over the *entire* schedule space.
    ExploreResult result =
        exploreAll(kernelRunner("boltdb-240", Variant::Fixed));
    EXPECT_TRUE(result.exhaustive);
    EXPECT_FALSE(result.anyBad()) << result.firstBad.describe();
    // The patched ordering serializes the two goroutines: the whole
    // schedule space collapses to a single clean interleaving.
    EXPECT_EQ(result.clean, result.schedules);
}

TEST(Explorer, ProvesBuggyKernelAlwaysDeadlocks)
{
    // boltdb-240 buggy: the circular wait is schedule-independent;
    // every schedule globally deadlocks.
    ExploreResult result =
        exploreAll(kernelRunner("boltdb-240", Variant::Buggy));
    EXPECT_TRUE(result.exhaustive);
    EXPECT_EQ(result.globalDeadlocks, result.schedules);
}

TEST(Explorer, PartitionsABBASchedulesExactly)
{
    // A minimal AB-BA deadlock: exploration enumerates the whole
    // space and partitions it exactly into deadlocking and lucky
    // schedules — the statement random testing can only estimate.
    // State must be created inside the program: the explorer runs it
    // once per schedule.
    auto abba = [] {
        auto a = std::make_shared<Mutex>();
        auto b = std::make_shared<Mutex>();
        go([a, b] {
            a->lock();
            yield();
            b->lock();
            b->unlock();
            a->unlock();
        });
        go([a, b] {
            b->lock();
            yield();
            a->lock();
            a->unlock();
            b->unlock();
        });
    };
    ExploreResult result = exploreProgram(abba);
    EXPECT_TRUE(result.exhaustive);
    EXPECT_GT(result.leakedOnly, 0u); // some schedules deadlock...
    EXPECT_GT(result.clean, 0u);      // ...and some get lucky
    EXPECT_EQ(result.clean + result.leakedOnly, result.schedules);
}

TEST(Explorer, BoundedVerificationOfFixedEtcd10492)
{
    // The full kernel's space exceeds a test-sized budget (main
    // yields 20 times against two workers); bounded exploration
    // still must find zero failures in its prefix of the tree.
    ExploreOptions options;
    options.maxSchedules = 4000;
    ExploreResult result =
        exploreAll(kernelRunner("etcd-10492", Variant::Fixed), options);
    EXPECT_FALSE(result.anyBad()) << result.firstBad.describe();
    EXPECT_EQ(result.clean, result.schedules);
}

TEST(Explorer, VerifiesSeveralFixedKernelsExhaustively)
{
    // Small fixed kernels whose whole schedule space fits the
    // budget: the strongest statement the repo makes about them.
    for (const char *id : {"boltdb-392", "moby-17176", "grpc-795",
                           "kubernetes-70447", "grpc-1275",
                           "etcd-6632", "docker-5416"}) {
        ExploreResult result =
            exploreAll(kernelRunner(id, Variant::Fixed));
        EXPECT_TRUE(result.exhaustive) << id;
        EXPECT_FALSE(result.anyBad())
            << id << ": " << result.firstBad.describe();
    }
}

TEST(Explorer, BudgetBoundsTheRun)
{
    ExploreOptions options;
    options.maxSchedules = 5;
    ExploreResult result = exploreAll(
        kernelRunner("etcd-10492", Variant::Buggy), options);
    EXPECT_EQ(result.schedules, 5u);
    EXPECT_FALSE(result.exhaustive);
}

TEST(Explorer, SmallScheduleSpacesAreExhaustedBelowBudget)
{
    // kubernetes-5316's only decision is the select shuffle: two
    // schedules cover it completely.
    ExploreResult result =
        exploreAll(kernelRunner("kubernetes-5316", Variant::Buggy));
    EXPECT_TRUE(result.exhaustive);
    EXPECT_EQ(result.schedules, 2u);
    // Under virtual time the 10ms timeout always beats the 50ms
    // handler, so both schedules leak the handler.
    EXPECT_EQ(result.leakedOnly, result.schedules);
}

TEST(Explorer, FirstBadScheduleReplays)
{
    auto runner = kernelRunner("etcd-10492", Variant::Buggy);
    ExploreOptions options;
    options.maxSchedules = 4000;
    ExploreResult result = exploreAll(runner, options);
    ASSERT_TRUE(result.anyBad());
    RunReport replay =
        replaySchedule(runner, result.firstBadSchedule);
    EXPECT_TRUE(replay.blocked());
    EXPECT_EQ(replay.leaked.size(), result.firstBad.leaked.size());
}

TEST(Explorer, RandomTestingAgreesWithExhaustiveVerdict)
{
    // Cross-validation: for a kernel the explorer proves safe, no
    // random seed may find a failure; for one it proves sometimes-
    // bad, random testing should find a failure eventually.
    auto fixed_runner = kernelRunner("boltdb-392", Variant::Fixed);
    for (uint64_t seed = 0; seed < 30; ++seed) {
        RunOptions options;
        options.seed = seed;
        EXPECT_TRUE(fixed_runner(options).clean());
    }
    const corpus::BugCase *bug = findBug("etcd-10492");
    int manifested = 0;
    for (uint64_t seed = 0; seed < 60; ++seed) {
        RunOptions options;
        options.seed = seed;
        options.preemptProb = 0.0;
        manifested += bug->run(Variant::Buggy, options).manifested;
    }
    EXPECT_GT(manifested, 0);
}

} // namespace
} // namespace golite::explore
