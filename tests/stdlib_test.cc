/**
 * @file
 * Tests for the library extras: SyncMap, Pool, time.AfterFunc, and
 * context.WithValue — the remaining pieces of the Go standard
 * surface the paper's taxonomy references (Table 4 "Misc"
 * primitives; etcd-7816's context payloads).
 */

#include <gtest/gtest.h>

#include <string>

#include "golite/golite.hh"

namespace golite
{
namespace
{

using gotime::kMillisecond;

TEST(SyncMap, LoadStoreDelete)
{
    run([] {
        SyncMap<std::string, int> m;
        EXPECT_FALSE(m.load("a").has_value());
        m.store("a", 1);
        m.store("b", 2);
        EXPECT_EQ(m.load("a").value(), 1);
        EXPECT_EQ(m.size(), 2u);
        m.del("a");
        EXPECT_FALSE(m.load("a").has_value());
    });
}

TEST(SyncMap, LoadOrStore)
{
    run([] {
        SyncMap<int, std::string> m;
        auto [v1, loaded1] = m.loadOrStore(1, "first");
        EXPECT_FALSE(loaded1);
        EXPECT_EQ(v1, "first");
        auto [v2, loaded2] = m.loadOrStore(1, "second");
        EXPECT_TRUE(loaded2);
        EXPECT_EQ(v2, "first");
    });
}

TEST(SyncMap, LoadAndDelete)
{
    run([] {
        SyncMap<int, int> m;
        m.store(5, 50);
        auto taken = m.loadAndDelete(5);
        ASSERT_TRUE(taken.has_value());
        EXPECT_EQ(*taken, 50);
        EXPECT_FALSE(m.loadAndDelete(5).has_value());
    });
}

TEST(SyncMap, RangeSeesSnapshot)
{
    run([] {
        SyncMap<int, int> m;
        for (int i = 0; i < 5; ++i)
            m.store(i, i * 10);
        int visited = 0;
        m.range([&](const int &k, const int &v) {
            EXPECT_EQ(v, k * 10);
            visited++;
            return true;
        });
        EXPECT_EQ(visited, 5);
        // Early stop.
        visited = 0;
        m.range([&](const int &, const int &) {
            visited++;
            return visited < 2;
        });
        EXPECT_EQ(visited, 2);
    });
}

TEST(SyncMap, ConcurrentLoadOrStoreInitializesOnce)
{
    // The etcd-4959 lazy-init bug, fixed with SyncMap: exactly one
    // goroutine's value wins.
    std::string winner;
    run([&] {
        SyncMap<std::string, std::string> m;
        WaitGroup wg;
        wg.add(4);
        for (int g = 0; g < 4; ++g) {
            go([&, g] {
                m.loadOrStore("config", "goroutine-" +
                                            std::to_string(g));
                wg.done();
            });
        }
        wg.wait();
        winner = m.load("config").value();
    });
    EXPECT_EQ(winner.rfind("goroutine-", 0), 0u);
}

TEST(SyncMap, SuppressesRaceOnTheMapItself)
{
    race::Detector detector;
    RunOptions options;
    options.subscribers.push_back(&detector);
    SyncMap<int, int> m;
    run([&] {
        WaitGroup wg;
        wg.add(2);
        for (int g = 0; g < 2; ++g) {
            go([&, g] {
                m.store(g, g);
                (void)m.load(1 - g);
                wg.done();
            });
        }
        wg.wait();
    }, options);
    EXPECT_TRUE(detector.reports().empty());
}

TEST(Pool, ReusesReturnedValues)
{
    run([] {
        int made = 0;
        Pool<int> pool([&made] { return ++made; });
        int a = pool.get();
        EXPECT_EQ(a, 1);
        pool.put(a);
        EXPECT_EQ(pool.idle(), 1u);
        EXPECT_EQ(pool.get(), 1); // reused, factory not called
        EXPECT_EQ(made, 1);
        EXPECT_EQ(pool.get(), 2); // empty pool: factory again
    });
}

TEST(Pool, WorksAcrossGoroutines)
{
    int made = 0;
    run([&] {
        Pool<std::string> pool([&made] {
            made++;
            return std::string("buf");
        });
        WaitGroup wg;
        wg.add(3);
        for (int g = 0; g < 3; ++g) {
            go([&] {
                std::string buffer = pool.get();
                yield();
                pool.put(std::move(buffer));
                wg.done();
            });
        }
        wg.wait();
    });
    EXPECT_GE(made, 1);
    EXPECT_LE(made, 3);
}

TEST(AfterFunc, RunsAfterDelay)
{
    int fired_at = -1;
    run([&] {
        gotime::afterFunc(10 * kMillisecond, [&] {
            fired_at = static_cast<int>(gotime::now() / kMillisecond);
        });
        gotime::sleep(20 * kMillisecond);
    });
    EXPECT_EQ(fired_at, 10);
}

TEST(AfterFunc, StopCancels)
{
    bool fired = false;
    run([&] {
        gotime::Timer t =
            gotime::afterFunc(10 * kMillisecond, [&] { fired = true; });
        EXPECT_TRUE(t.stop());
        gotime::sleep(30 * kMillisecond);
    });
    EXPECT_FALSE(fired);
}

TEST(AfterFunc, RunsInItsOwnGoroutine)
{
    // The callback can block on channels (it is a real goroutine).
    int got = 0;
    run([&] {
        Chan<int> ch = makeChan<int>();
        gotime::afterFunc(5 * kMillisecond,
                          [ch] { ch.send(99); });
        got = ch.recv().value;
    });
    EXPECT_EQ(got, 99);
}

TEST(WithValue, LooksUpThroughTheChain)
{
    run([] {
        ctx::Context root = ctx::background();
        ctx::Context a = ctx::withValue(root, "user", std::any(42));
        ctx::Context b =
            ctx::withValue(a, "trace", std::any(std::string("t-1")));
        ASSERT_NE(b->value("trace"), nullptr);
        EXPECT_EQ(std::any_cast<std::string>(*b->value("trace")), "t-1");
        ASSERT_NE(b->value("user"), nullptr);
        EXPECT_EQ(std::any_cast<int>(*b->value("user")), 42);
        EXPECT_EQ(b->value("missing"), nullptr);
        EXPECT_EQ(a->value("trace"), nullptr); // child-only key
    });
}

TEST(WithValue, ShadowingWorks)
{
    run([] {
        ctx::Context a =
            ctx::withValue(ctx::background(), "k", std::any(1));
        ctx::Context b = ctx::withValue(a, "k", std::any(2));
        EXPECT_EQ(std::any_cast<int>(*b->value("k")), 2);
        EXPECT_EQ(std::any_cast<int>(*a->value("k")), 1);
    });
}

TEST(WithValue, SharesParentCancellation)
{
    run([] {
        auto [parent, cancel] = ctx::withCancel(ctx::background());
        ctx::Context child =
            ctx::withValue(parent, "k", std::any(1));
        EXPECT_TRUE(static_cast<bool>(child->done()));
        cancel();
        // The shared done channel is closed exactly once; the child
        // observes it.
        auto r = child->done().tryRecv();
        ASSERT_TRUE(r.has_value());
        EXPECT_FALSE(r->ok); // closed
        EXPECT_TRUE(child->cancelled());
    });
}

TEST(WithValue, CancelThroughValueNodeDoesNotDoubleClose)
{
    RunReport report = run([] {
        auto [parent, cancel] = ctx::withCancel(ctx::background());
        ctx::Context v1 = ctx::withValue(parent, "a", std::any(1));
        ctx::Context v2 = ctx::withValue(v1, "b", std::any(2));
        auto [leaf, cancel_leaf] = ctx::withCancel(v2);
        cancel(); // cascades through the value nodes to the leaf
        EXPECT_TRUE(leaf->cancelled());
        cancel_leaf();
    });
    EXPECT_FALSE(report.panicked);
}

} // namespace
} // namespace golite
