/**
 * @file
 * Differential test: the optimized race detector against the full-VC
 * reference (tests/ref_detector.hh).
 *
 * Both detectors subscribe to the SAME run's event bus, so every
 * address, goroutine id, and interleaving is identical; the optimized
 * detector (epoch fast paths, packed cells, pointer tables, SBO
 * clocks, reset() reuse) must then produce the exact report sequence
 * the naive full-vector-clock implementation produces — over the
 * whole corpus, buggy and fixed variants, several seeds, at shadow
 * depths 1, 2, 4, and 16. A second test holds fast-path-on against
 * fast-path-off inside one run the same way.
 */

#include <gtest/gtest.h>

#include "corpus/bug.hh"
#include "golite/golite.hh"
#include "ref_detector.hh"

namespace golite
{
namespace
{

using corpus::Behavior;
using corpus::BugCase;
using corpus::Variant;
using race::Detector;
using race::RaceReport;
using race::RefDetector;

void
expectSameReports(const std::vector<RaceReport> &optimized,
                  const std::vector<RaceReport> &reference,
                  const std::string &what)
{
    ASSERT_EQ(optimized.size(), reference.size()) << what;
    for (size_t i = 0; i < optimized.size(); ++i) {
        const RaceReport &o = optimized[i];
        const RaceReport &r = reference[i];
        EXPECT_EQ(o.label, r.label) << what << " report " << i;
        EXPECT_EQ(o.addr, r.addr) << what << " report " << i;
        EXPECT_EQ(o.firstGid, r.firstGid) << what << " report " << i;
        EXPECT_EQ(o.firstWrite, r.firstWrite)
            << what << " report " << i;
        EXPECT_EQ(o.secondGid, r.secondGid) << what << " report " << i;
        EXPECT_EQ(o.secondWrite, r.secondWrite)
            << what << " report " << i;
    }
}

class RaceDifferential : public ::testing::TestWithParam<size_t>
{
};

TEST_P(RaceDifferential, CorpusMatchesFullVectorClockReference)
{
    const size_t depth = GetParam();
    Detector optimized(depth); // reused across all runs via reset()
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::NonBlocking, true)) {
        for (const Variant variant : {Variant::Buggy, Variant::Fixed}) {
            for (uint64_t seed = 0; seed < 3; ++seed) {
                optimized.reset(depth);
                RefDetector reference(depth);
                RunOptions options;
                options.seed = seed;
                options.subscribers = {&optimized, &reference};
                bug->run(variant, options);
                expectSameReports(
                    optimized.reports(), reference.reports(),
                    bug->info.id + "/" +
                        (variant == Variant::Buggy ? "buggy"
                                                   : "fixed") +
                        "/seed" + std::to_string(seed) + "/depth" +
                        std::to_string(depth));
            }
        }
    }
}

TEST_P(RaceDifferential, EvictionStressMatchesReference)
{
    // The depth-sensitive pattern: a racy write pushed through the
    // ring by same-goroutine reads. Exercises miss-mode parity at
    // every depth.
    const size_t depth = GetParam();
    for (int reads = 0; reads <= 12; ++reads) {
        Detector optimized(depth);
        RefDetector reference(depth);
        RunOptions options;
        options.subscribers = {&optimized, &reference};
        options.policy = SchedPolicy::Fifo;
        options.preemptProb = 0.0;
        race::Shared<int> x("stress");
        run([&] {
            go([&] {
                x.store(1);
                for (int i = 0; i < reads; ++i)
                    (void)x.load();
            });
            go([&] { (void)x.load(); });
            yield();
            yield();
        }, options);
        expectSameReports(optimized.reports(), reference.reports(),
                          "stress/reads" + std::to_string(reads) +
                              "/depth" + std::to_string(depth));
    }
}

TEST_P(RaceDifferential, FastPathOffMatchesOnWithinOneRun)
{
    const size_t depth = GetParam();
    Detector fast_on(depth);
    fast_on.setFastPath(true);
    Detector fast_off(depth);
    fast_off.setFastPath(false);
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::NonBlocking, true)) {
        for (uint64_t seed = 0; seed < 3; ++seed) {
            fast_on.reset(depth);
            fast_off.reset(depth);
            RunOptions options;
            options.seed = seed;
            options.subscribers = {&fast_on, &fast_off};
            bug->run(Variant::Buggy, options);
            expectSameReports(fast_on.reports(), fast_off.reports(),
                              bug->info.id + "/seed" +
                                  std::to_string(seed) + "/depth" +
                                  std::to_string(depth));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, RaceDifferential,
                         ::testing::Values<size_t>(1, 2, 4, 16));

} // namespace
} // namespace golite
