/**
 * @file
 * Differential test: the optimized race detector against the full-VC
 * reference (tests/ref_detector.hh).
 *
 * Both detectors subscribe to the SAME run's event bus, so every
 * address, goroutine id, and interleaving is identical; the optimized
 * detector (epoch fast paths, packed cells, pointer tables, SBO
 * clocks, reset() reuse) must then produce the exact report sequence
 * the naive full-vector-clock implementation produces — over the
 * whole corpus, buggy and fixed variants, several seeds, at shadow
 * depths 1, 2, 4, and 16. A second test holds fast-path-on against
 * fast-path-off inside one run the same way.
 */

#include <gtest/gtest.h>

#include <memory>

#include "corpus/bug.hh"
#include "golite/golite.hh"
#include "ref_detector.hh"

namespace golite
{
namespace
{

using corpus::Behavior;
using corpus::BugCase;
using corpus::Variant;
using race::Detector;
using race::RaceReport;
using race::RefDetector;

void
expectSameReports(const std::vector<RaceReport> &optimized,
                  const std::vector<RaceReport> &reference,
                  const std::string &what)
{
    ASSERT_EQ(optimized.size(), reference.size()) << what;
    for (size_t i = 0; i < optimized.size(); ++i) {
        const RaceReport &o = optimized[i];
        const RaceReport &r = reference[i];
        EXPECT_EQ(o.label, r.label) << what << " report " << i;
        EXPECT_EQ(o.addr, r.addr) << what << " report " << i;
        EXPECT_EQ(o.firstGid, r.firstGid) << what << " report " << i;
        EXPECT_EQ(o.firstWrite, r.firstWrite)
            << what << " report " << i;
        EXPECT_EQ(o.secondGid, r.secondGid) << what << " report " << i;
        EXPECT_EQ(o.secondWrite, r.secondWrite)
            << what << " report " << i;
    }
}

class RaceDifferential : public ::testing::TestWithParam<size_t>
{
};

TEST_P(RaceDifferential, CorpusMatchesFullVectorClockReference)
{
    const size_t depth = GetParam();
    Detector optimized(depth); // reused across all runs via reset()
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::NonBlocking, true)) {
        for (const Variant variant : {Variant::Buggy, Variant::Fixed}) {
            for (uint64_t seed = 0; seed < 3; ++seed) {
                optimized.reset(depth);
                RefDetector reference(depth);
                RunOptions options;
                options.seed = seed;
                options.subscribers = {&optimized, &reference};
                bug->run(variant, options);
                expectSameReports(
                    optimized.reports(), reference.reports(),
                    bug->info.id + "/" +
                        (variant == Variant::Buggy ? "buggy"
                                                   : "fixed") +
                        "/seed" + std::to_string(seed) + "/depth" +
                        std::to_string(depth));
            }
        }
    }
}

TEST_P(RaceDifferential, EvictionStressMatchesReference)
{
    // The depth-sensitive pattern: a racy write pushed through the
    // ring by same-goroutine reads. Exercises miss-mode parity at
    // every depth.
    const size_t depth = GetParam();
    for (int reads = 0; reads <= 12; ++reads) {
        Detector optimized(depth);
        RefDetector reference(depth);
        RunOptions options;
        options.subscribers = {&optimized, &reference};
        options.policy = SchedPolicy::Fifo;
        options.preemptProb = 0.0;
        race::Shared<int> x("stress");
        run([&] {
            go([&] {
                x.store(1);
                for (int i = 0; i < reads; ++i)
                    (void)x.load();
            });
            go([&] { (void)x.load(); });
            yield();
            yield();
        }, options);
        expectSameReports(optimized.reports(), reference.reports(),
                          "stress/reads" + std::to_string(reads) +
                              "/depth" + std::to_string(depth));
    }
}

TEST_P(RaceDifferential, FastPathOffMatchesOnWithinOneRun)
{
    const size_t depth = GetParam();
    Detector fast_on(depth);
    fast_on.setFastPath(true);
    Detector fast_off(depth);
    fast_off.setFastPath(false);
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::NonBlocking, true)) {
        for (uint64_t seed = 0; seed < 3; ++seed) {
            fast_on.reset(depth);
            fast_off.reset(depth);
            RunOptions options;
            options.seed = seed;
            options.subscribers = {&fast_on, &fast_off};
            bug->run(Variant::Buggy, options);
            expectSameReports(fast_on.reports(), fast_off.reports(),
                              bug->info.id + "/seed" +
                                  std::to_string(seed) + "/depth" +
                                  std::to_string(depth));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, RaceDifferential,
                         ::testing::Values<size_t>(1, 2, 4, 16));

// ---------------------------------------------------------------------
// Churn: slot recycling and shadow reclamation under goroutine waves.
// ---------------------------------------------------------------------

constexpr size_t kWaves = 6;
constexpr size_t kWorkers = 8;

/**
 * Waves of short-lived goroutines. Even-numbered workers race on a
 * wave-local heap variable that is freed between waves (MemFree with
 * allocator address reuse); odd-numbered ones take a mutex and touch
 * nothing shared, so their slots retire with zero cell refs and are
 * rebound by the next wave. Exercises every lifecycle edge the
 * recycled detector has: bind, retire, refs-gated rebind, epoch
 * handoff above the floor, and freed-shadow erasure.
 */
void
churnWaves()
{
    Mutex mu;
    int guarded = 0;
    for (size_t w = 0; w < kWaves; ++w) {
        auto x = std::make_unique<race::Shared<int>>("wave");
        auto done = makeChan<Unit>();
        for (size_t i = 0; i < kWorkers; ++i) {
            go([&, i] {
                if (i % 2 == 0) {
                    x->store(static_cast<int>(i));
                } else {
                    mu.lock();
                    guarded++;
                    mu.unlock();
                }
                done.send(Unit{});
            });
        }
        for (size_t i = 0; i < kWorkers; ++i)
            done.recv();
        x.reset(); // mid-run MemFree of a raced-on address
    }
}

TEST(RaceChurn, ChurnWavesMatchReferenceAcrossModes)
{
    for (const bool reap : {false, true}) {
        for (const bool recycle : {false, true}) {
            for (uint64_t seed = 0; seed < 3; ++seed) {
                Detector optimized(4);
                optimized.setRecycle(recycle);
                RefDetector reference(4);
                RunOptions options;
                options.seed = seed;
                options.reapFinished = reap;
                options.subscribers = {&optimized, &reference};
                run(churnWaves, options);
                const std::string what =
                    std::string("churn/reap") + (reap ? "1" : "0") +
                    "/recycle" + (recycle ? "1" : "0") + "/seed" +
                    std::to_string(seed);
                expectSameReports(optimized.reports(),
                                  reference.reports(), what);
                // Recycling keeps the slot space at O(peak live).
                // A worker emits GoFinish only when rescheduled
                // after its channel handoff, so main can start the
                // next wave while the previous one is still
                // finishing — peak live is up to two waves, never
                // one slot per goroutine ever created.
                if (recycle)
                    EXPECT_LE(optimized.slotSpace(), 2 * kWorkers + 2)
                        << what;
                else
                    EXPECT_EQ(optimized.slotSpace(),
                              1 + kWaves * kWorkers)
                        << what;
                // The freed wave variables' shadow state is gone.
                EXPECT_GE(optimized.shadowFreed(), kWaves - 1) << what;
            }
        }
    }
}

TEST(RaceChurn, RaceOnRecycledSlotReportsCurrentGoroutines)
{
    // A race between two goroutines whose slots were recycled from an
    // earlier, finished wave must still be reported — and attributed
    // to the *new* goroutine ids, not the retired bindings that used
    // the same slots.
    Detector optimized(4);
    optimized.setRecycle(true);
    RefDetector reference(4);
    RunOptions options;
    options.reapFinished = true;
    options.subscribers = {&optimized, &reference};
    // Gids are sequential: main=1, wave 1 gets 2..9, so the wave-2
    // racers are 10 and 11.
    constexpr uint64_t firstRacerGid = 10;
    run([&] {
        // Wave 1: workers that share nothing; their slots retire
        // with zero cell refs and go straight to the free list.
        auto done = makeChan<Unit>();
        for (int i = 0; i < 8; ++i)
            go([done] { done.send(Unit{}); });
        for (int i = 0; i < 8; ++i)
            done.recv();
        // Wave 2: two unsynchronized writers on recycled slots.
        race::Shared<int> x("reuse");
        auto done2 = makeChan<Unit>();
        go([&] {
            x.store(1);
            done2.send(Unit{});
        });
        go([&] {
            x.store(2);
            done2.send(Unit{});
        });
        done2.recv();
        done2.recv();
    }, options);
    expectSameReports(optimized.reports(), reference.reports(),
                      "recycled-slot race");
    ASSERT_FALSE(optimized.reports().empty());
    for (const RaceReport &r : optimized.reports()) {
        EXPECT_GE(r.firstGid, firstRacerGid) << r.describe();
        EXPECT_GE(r.secondGid, firstRacerGid) << r.describe();
    }
    // Wave 2 reused wave 1's slots rather than materializing more.
    EXPECT_LE(optimized.slotSpace(), 9u);
}

TEST(RaceChurn, FingerprintsIdenticalAcrossRecycleModes)
{
    // Recycling must be invisible in the run artifact: same seed, one
    // run with a recycling detector and one without, byte-identical
    // RunReport fingerprints (race messages render real gids either
    // way) — the ISSUE's RECYCLE=0 vs =1 acceptance gate.
    for (const bool reap : {false, true}) {
        for (uint64_t seed = 0; seed < 3; ++seed) {
            RunReport byMode[2];
            for (const bool recycle : {false, true}) {
                Detector det(4);
                det.setRecycle(recycle);
                RunOptions options;
                options.seed = seed;
                options.reapFinished = reap;
                options.subscribers = {&det};
                byMode[recycle ? 1 : 0] = run(churnWaves, options);
            }
            EXPECT_EQ(byMode[0].fingerprint(), byMode[1].fingerprint())
                << "reap" << reap << "/seed" << seed;
        }
    }
}

TEST(RaceChurn, CorpusFingerprintsIdenticalAcrossRecycleModes)
{
    // Same gate across the whole non-blocking corpus, buggy variants.
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::NonBlocking, true)) {
        RunReport byMode[2];
        for (const bool recycle : {false, true}) {
            Detector det(4);
            det.setRecycle(recycle);
            RunOptions options;
            options.subscribers = {&det};
            byMode[recycle ? 1 : 0] =
                bug->run(Variant::Buggy, options).report;
        }
        EXPECT_EQ(byMode[0].fingerprint(), byMode[1].fingerprint())
            << bug->info.id;
    }
}

} // namespace
} // namespace golite
