/**
 * @file
 * io.Pipe tests: synchronous transfer, blocking semantics, EOF on
 * write-close, errors on read-close, and the unclosed-pipe leak that
 * backs the paper's "messaging libraries" blocking-bug class.
 */

#include <gtest/gtest.h>

#include <string>

#include "golite/golite.hh"

namespace golite
{
namespace
{

TEST(Pipe, TransfersData)
{
    std::string got;
    RunReport report = run([&] {
        auto [r, w] = goio::makePipe();
        go([w]() mutable { w.write("hello"); });
        std::string chunk;
        auto res = r.read(chunk);
        EXPECT_TRUE(res.ok());
        EXPECT_EQ(res.n, 5u);
        got = chunk;
    });
    EXPECT_EQ(got, "hello");
    EXPECT_TRUE(report.clean());
}

TEST(Pipe, WriteBlocksUntilFullyConsumed)
{
    bool write_returned = false;
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    run([&] {
        auto [r, w] = goio::makePipe();
        go([&, w]() mutable {
            w.write("abcdef");
            write_returned = true;
        });
        yield();
        std::string chunk;
        r.read(chunk, 3);
        EXPECT_EQ(chunk, "abc");
        EXPECT_FALSE(write_returned); // 3 bytes still pending
        r.read(chunk, 3);
        EXPECT_EQ(chunk, "def");
        yield();
        EXPECT_TRUE(write_returned);
    }, options);
}

TEST(Pipe, ReadBlocksUntilWrite)
{
    RunReport report = run([] {
        auto [r, w] = goio::makePipe();
        go([w]() mutable {
            yield();
            w.write("x");
        });
        std::string chunk;
        auto res = r.read(chunk);
        EXPECT_EQ(chunk, "x");
        EXPECT_TRUE(res.ok());
    });
    EXPECT_TRUE(report.clean());
}

TEST(Pipe, CloseWriteGivesEof)
{
    run([] {
        auto [r, w] = goio::makePipe();
        w.close();
        std::string chunk;
        auto res = r.read(chunk);
        EXPECT_EQ(res.n, 0u);
        EXPECT_EQ(res.err, "EOF");
    });
}

TEST(Pipe, CloseWithCausePropagates)
{
    run([] {
        auto [r, w] = goio::makePipe();
        w.close("upstream exploded");
        std::string chunk;
        auto res = r.read(chunk);
        EXPECT_EQ(res.err, "upstream exploded");
    });
}

TEST(Pipe, CloseReadFailsWriters)
{
    run([] {
        auto [r, w] = goio::makePipe();
        r.close();
        auto res = w.write("data");
        EXPECT_FALSE(res.ok());
        EXPECT_EQ(res.err, "io: write on closed pipe");
    });
}

TEST(Pipe, CloseReadWakesBlockedWriter)
{
    RunReport report = run([] {
        auto [r, w] = goio::makePipe();
        go([w]() mutable {
            auto res = w.write("stuck");
            EXPECT_FALSE(res.ok());
        });
        yield();
        r.close();
        yield();
    });
    EXPECT_TRUE(report.clean());
}

TEST(Pipe, CloseWriteWakesBlockedReader)
{
    RunReport report = run([] {
        auto [r, w] = goio::makePipe();
        go([r]() mutable {
            std::string chunk;
            auto res = r.read(chunk);
            EXPECT_EQ(res.err, "EOF");
        });
        yield();
        w.close();
        yield();
    });
    EXPECT_TRUE(report.clean());
}

TEST(Pipe, UnclosedPipeLeaksWriter)
{
    // The paper's messaging-library blocking class: a goroutine
    // writing to a pipe whose reader stopped reading (and never
    // closed) blocks forever.
    RunReport report = run([] {
        auto [r, w] = goio::makePipe();
        go("pipe-writer", [w]() mutable { w.write("nobody reads"); });
        yield();
        // Reader goes away without closing.
    });
    ASSERT_EQ(report.leaked.size(), 1u);
    EXPECT_EQ(report.leaked[0].reason, WaitReason::PipeWrite);
}

TEST(Pipe, MultipleWritesStreamInOrder)
{
    std::string all;
    RunReport report = run([&] {
        auto [r, w] = goio::makePipe();
        go([w]() mutable {
            w.write("one,");
            w.write("two,");
            w.write("three");
            w.close();
        });
        std::string chunk;
        for (;;) {
            auto res = r.read(chunk);
            all += chunk;
            if (!res.ok())
                break;
        }
    });
    EXPECT_EQ(all, "one,two,three");
    EXPECT_TRUE(report.clean());
}

TEST(Pipe, ReadAfterReadCloseErrors)
{
    run([] {
        auto [r, w] = goio::makePipe();
        r.close();
        std::string chunk;
        auto res = r.read(chunk);
        EXPECT_EQ(res.err, "io: read on closed pipe");
    });
}

} // namespace
} // namespace golite
