/**
 * @file
 * Tests for the base utilities: the seeded PRNG every experiment's
 * determinism rests on, and the Go-panic machinery.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/panic.hh"
#include "base/rng.hh"

namespace golite
{
namespace
{

TEST(Rng, DeterministicPerSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedResetsTheStream)
{
    Rng rng(7);
    const uint64_t first = rng.next();
    rng.next();
    rng.seed(7);
    EXPECT_EQ(rng.next(), first);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform)
{
    Rng rng(99);
    std::map<uint64_t, int> counts;
    const int draws = 60000;
    for (int i = 0; i < draws; ++i) {
        const uint64_t v = rng.below(6);
        ASSERT_LT(v, 6u);
        counts[v]++;
    }
    for (uint64_t v = 0; v < 6; ++v) {
        EXPECT_GT(counts[v], draws / 6 - draws / 60) << v;
        EXPECT_LT(counts[v], draws / 6 + draws / 60) << v;
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(42);
    int hits = 0;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.02);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, SequenceHasNoShortCycle)
{
    Rng rng(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(rng.next());
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(Panic, CarriesTheMessage)
{
    try {
        goPanic("send on closed channel");
        FAIL() << "goPanic returned";
    } catch (const GoPanic &p) {
        EXPECT_EQ(p.message(), "send on closed channel");
        EXPECT_STREQ(p.what(), "panic: send on closed channel");
    }
}

TEST(Panic, IsARuntimeError)
{
    try {
        goPanic("boom");
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("boom"),
                  std::string::npos);
        return;
    }
    FAIL() << "GoPanic must derive from std::runtime_error";
}

} // namespace
} // namespace golite
