/**
 * @file
 * Tests for the goroutine scheduler: spawning, yielding, determinism,
 * virtual time, goroutine leaks, global deadlock detection, panics,
 * and teardown unwinding.
 */

#include <gtest/gtest.h>

#include <vector>

#include "golite/golite.hh"

namespace golite
{
namespace
{

TEST(Scheduler, MainRunsToCompletion)
{
    bool ran = false;
    RunReport report = run([&] { ran = true; });
    EXPECT_TRUE(ran);
    EXPECT_TRUE(report.completed);
    EXPECT_TRUE(report.clean());
    EXPECT_FALSE(report.globalDeadlock);
    EXPECT_EQ(report.goroutinesCreated, 1u);
}

TEST(Scheduler, SpawnedGoroutinesRun)
{
    int count = 0;
    RunReport report = run([&] {
        for (int i = 0; i < 10; ++i)
            go([&count] { count++; });
        // Main yields until children finish (drain also covers this).
        for (int i = 0; i < 20; ++i)
            yield();
    });
    EXPECT_EQ(count, 10);
    EXPECT_EQ(report.goroutinesCreated, 11u);
    EXPECT_TRUE(report.clean());
}

TEST(Scheduler, DrainAfterMainRunsPendingGoroutines)
{
    bool child_ran = false;
    RunOptions options;
    options.drainAfterMain = true;
    RunReport report = run([&] { go([&] { child_ran = true; }); },
                           options);
    EXPECT_TRUE(child_ran);
    EXPECT_TRUE(report.clean());
}

TEST(Scheduler, NoDrainStopsAtMainExit)
{
    bool child_ran = false;
    RunOptions options;
    options.drainAfterMain = false;
    options.policy = SchedPolicy::Fifo; // keep main running first
    run([&] { go([&] { child_ran = true; }); }, options);
    EXPECT_FALSE(child_ran);
}

TEST(Scheduler, SameSeedSameSchedule)
{
    auto trace = [](uint64_t seed) {
        std::vector<int> order;
        RunOptions options;
        options.seed = seed;
        run([&] {
            for (int i = 0; i < 8; ++i)
                go([&order, i] { order.push_back(i); });
        }, options);
        return order;
    };
    EXPECT_EQ(trace(42), trace(42));
    // Different seeds give different interleavings for 8 goroutines
    // with overwhelming probability; allow equality only if both
    // match a third distinct seed too (catastrophically unlikely).
    if (trace(42) == trace(43)) {
        EXPECT_NE(trace(42), trace(44));
    }
}

TEST(Scheduler, FifoPolicyIsProgramOrder)
{
    std::vector<int> order;
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    run([&] {
        for (int i = 0; i < 5; ++i)
            go([&order, i] { order.push_back(i); });
    }, options);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, LifoPolicyReversesSpawnOrder)
{
    std::vector<int> order;
    RunOptions options;
    options.policy = SchedPolicy::Lifo;
    run([&] {
        for (int i = 0; i < 5; ++i)
            go([&order, i] { order.push_back(i); });
    }, options);
    // After main exits, the drain pops the newest spawn first.
    EXPECT_EQ(order, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(Scheduler, GlobalDeadlockDetected)
{
    // Main parks forever with no other goroutine: the Go runtime
    // prints "all goroutines are asleep - deadlock!".
    RunReport report = run([] {
        Chan<int> ch = makeChan<int>();
        ch.recv(); // nobody will ever send
    });
    EXPECT_TRUE(report.globalDeadlock);
    EXPECT_FALSE(report.completed);
}

TEST(Scheduler, PartialBlockingIsNotGlobalDeadlock)
{
    // A leaked child does NOT trigger the built-in detector; it shows
    // up in the leak report instead. This asymmetry is the core of
    // the paper's Table 8 finding.
    RunReport report = run([] {
        Chan<int> ch = makeChan<int>();
        go("leaky", [ch] { ch.recv(); });
        yield();
    });
    EXPECT_FALSE(report.globalDeadlock);
    EXPECT_TRUE(report.completed);
    ASSERT_EQ(report.leaked.size(), 1u);
    EXPECT_EQ(report.leaked[0].reason, WaitReason::ChanRecv);
    EXPECT_EQ(report.leaked[0].label, "leaky");
}

TEST(Scheduler, PanicAbortsRun)
{
    bool after_panic = false;
    RunReport report = run([&] {
        go([] { goPanic("boom"); });
        for (int i = 0; i < 100; ++i)
            yield();
        after_panic = true;
    });
    EXPECT_TRUE(report.panicked);
    EXPECT_EQ(report.panicMessage, "boom");
    EXPECT_FALSE(report.completed);
    EXPECT_FALSE(after_panic);
}

TEST(Scheduler, TeardownRunsDestructors)
{
    // Destructors of parked goroutines must run when the run aborts.
    bool destroyed = false;
    struct Sentinel
    {
        bool *flag;
        ~Sentinel() { *flag = true; }
    };
    RunOptions options;
    options.policy = SchedPolicy::Fifo; // child parks before the panic
    RunReport report = run([&] {
        go([&] {
            Sentinel s{&destroyed};
            Chan<int> ch = makeChan<int>();
            ch.recv(); // parks forever
        });
        yield();
        goPanic("teardown");
    }, options);
    EXPECT_TRUE(report.panicked);
    EXPECT_TRUE(destroyed);
}

TEST(Scheduler, VirtualClockAdvancesOnSleep)
{
    int64_t before = -1, after = -1;
    run([&] {
        before = gotime::now();
        gotime::sleep(5 * gotime::kMillisecond);
        after = gotime::now();
    });
    EXPECT_EQ(before, 0);
    EXPECT_EQ(after, 5 * gotime::kMillisecond);
}

TEST(Scheduler, SleepersInterleaveByDeadline)
{
    std::vector<int> order;
    run([&] {
        WaitGroup wg;
        wg.add(3);
        go([&] {
            gotime::sleep(30);
            order.push_back(3);
            wg.done();
        });
        go([&] {
            gotime::sleep(10);
            order.push_back(1);
            wg.done();
        });
        go([&] {
            gotime::sleep(20);
            order.push_back(2);
            wg.done();
        });
        wg.wait();
    });
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, LivelockGuardTrips)
{
    RunOptions options;
    options.maxTicks = 1000;
    RunReport report = run([] {
        for (;;)
            yield();
    }, options);
    EXPECT_TRUE(report.livelocked);
    EXPECT_FALSE(report.completed);
}

TEST(Scheduler, StatsTrackGoroutineLifetimes)
{
    RunOptions options;
    options.collectStats = true;
    RunReport report = run([] {
        WaitGroup wg;
        wg.add(2);
        for (int i = 0; i < 2; ++i) {
            go([&wg] {
                yield();
                wg.done();
            });
        }
        wg.wait();
    }, options);
    ASSERT_EQ(report.stats.size(), 3u);
    for (const GoroutineStat &stat : report.stats) {
        EXPECT_TRUE(stat.finished);
        EXPECT_LE(stat.createdTick, stat.finishedTick);
    }
}

TEST(Scheduler, NestedSpawnsWork)
{
    int depth_reached = 0;
    run([&] {
        go([&] {
            go([&] {
                go([&] { depth_reached = 3; });
            });
        });
    });
    EXPECT_EQ(depth_reached, 3);
}

TEST(Scheduler, ManyGoroutines)
{
    // The paper's Observation 1: Go programs create goroutines
    // liberally. Make sure thousands are cheap and correct.
    int count = 0;
    RunReport report = run([&] {
        WaitGroup wg;
        wg.add(2000);
        for (int i = 0; i < 2000; ++i) {
            go([&] {
                count++;
                wg.done();
            });
        }
        wg.wait();
    });
    EXPECT_EQ(count, 2000);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.goroutinesCreated, 2001u);
}

class SeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeedSweep, SchedulerIsDeterministicPerSeed)
{
    auto once = [&] {
        std::vector<int> order;
        RunOptions options;
        options.seed = GetParam();
        run([&] {
            WaitGroup wg;
            wg.add(6);
            for (int i = 0; i < 6; ++i) {
                go([&, i] {
                    yield();
                    order.push_back(i);
                    wg.done();
                });
            }
            wg.wait();
        }, options);
        return order;
    };
    EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(PctScheduler, CorrectProgramsStillComplete)
{
    for (uint64_t seed = 0; seed < 12; ++seed) {
        RunOptions options;
        options.policy = SchedPolicy::Pct;
        options.seed = seed;
        int sum = 0;
        RunReport report = run([&] {
            Chan<int> ch = makeChan<int>(4);
            WaitGroup wg;
            wg.add(4);
            for (int i = 1; i <= 4; ++i) {
                go([&, i] {
                    ch.send(i);
                    wg.done();
                });
            }
            go([&] {
                wg.wait();
                ch.close();
            });
            while (true) {
                auto r = ch.recv();
                if (!r.ok)
                    break;
                sum += r.value;
            }
        }, options);
        EXPECT_EQ(sum, 10) << seed;
        EXPECT_TRUE(report.clean()) << seed;
    }
}

TEST(PctScheduler, DeterministicPerSeed)
{
    auto trace = [](uint64_t seed) {
        std::vector<int> order;
        RunOptions options;
        options.policy = SchedPolicy::Pct;
        options.seed = seed;
        run([&] {
            WaitGroup wg;
            wg.add(5);
            for (int i = 0; i < 5; ++i) {
                go([&, i] {
                    yield();
                    order.push_back(i);
                    wg.done();
                });
            }
            wg.wait();
        }, options);
        return order;
    };
    EXPECT_EQ(trace(7), trace(7));
}

TEST(PctScheduler, PrioritiesImposeAStableOrderBetweenChangePoints)
{
    // With no yields or parks, PCT runs each goroutine to completion
    // in (seeded) priority order — unlike Random, which interleaves
    // freely at every yield.
    RunOptions options;
    options.policy = SchedPolicy::Pct;
    options.seed = 3;
    std::vector<int> first_run, second_run;
    for (std::vector<int> *order : {&first_run, &second_run}) {
        run([&] {
            for (int i = 0; i < 6; ++i) {
                go([order, i] {
                    yield();
                    order->push_back(i);
                });
            }
        }, options);
    }
    EXPECT_EQ(first_run, second_run);
}

} // namespace
} // namespace golite
