/**
 * @file
 * Unit tests for the schedule-fuzzing stack: ScheduleTrace
 * serialization, exact record/replay, strict-replay divergence,
 * coverage probes, the mutation engine, the fuzzer loop, and the
 * shrinker (the corpus-wide fuzz sweep lives in fuzz_corpus_test.cc,
 * behind the "fuzz" ctest label).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "corpus/bug.hh"
#include "fuzz/coverage.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/golden.hh"
#include "fuzz/shrink.hh"
#include "golite/golite.hh"

namespace golite
{
namespace
{

// A small schedule-sensitive program: two goroutines racing to a
// buffered channel, a select over two channels, and instrumented
// shared accesses (preemption points).
void
sampleProgram()
{
    auto st = std::make_shared<race::Shared<int>>("counter");
    Chan<int> a = makeChan<int>(1);
    Chan<int> b = makeChan<int>(1);
    go("left", [st, a] {
        st->update([](int &v) { v += 1; });
        a.send(1);
    });
    go("right", [st, b] {
        st->update([](int &v) { v += 2; });
        b.send(2);
    });
    int got = 0;
    Select()
        .recv<int>(a, [&got](int v, bool) { got += v; })
        .recv<int>(b, [&got](int v, bool) { got += v; })
        .run();
    (void)got;
}

RunOptions
randomOptions(uint64_t seed)
{
    RunOptions ro;
    ro.policy = SchedPolicy::Random;
    ro.seed = seed;
    return ro;
}

// --- ScheduleTrace serialization ---------------------------------

TEST(ScheduleTrace, SerializeParseRoundtrip)
{
    ScheduleTrace t;
    t.decisions.push_back({DecisionKind::Pick, 3, 2});
    t.decisions.push_back({DecisionKind::Preempt, 2, 0});
    t.decisions.push_back({DecisionKind::Preempt, 2, 0});
    t.decisions.push_back({DecisionKind::Preempt, 2, 1});
    t.decisions.push_back({DecisionKind::SelectArm, 2, 1});

    const std::string text = t.serialize();
    ScheduleTrace back;
    std::string error;
    ASSERT_TRUE(ScheduleTrace::parse(text, back, &error)) << error;
    EXPECT_EQ(t, back);
}

TEST(ScheduleTrace, EmptyTraceRoundtrip)
{
    ScheduleTrace t;
    ScheduleTrace back;
    ASSERT_TRUE(ScheduleTrace::parse(t.serialize(), back, nullptr));
    EXPECT_TRUE(back.empty());
}

TEST(ScheduleTrace, ParseRejectsMalformedInput)
{
    ScheduleTrace out;
    std::string error;
    // Wrong header.
    EXPECT_FALSE(ScheduleTrace::parse("golite-trace v9\n", out,
                                      &error));
    EXPECT_NE(error.find("header"), std::string::npos) << error;
    // Pick out of range.
    EXPECT_FALSE(ScheduleTrace::parse(
        "golite-trace v1\np 2 5\n", out, &error));
    // Unknown op.
    EXPECT_FALSE(ScheduleTrace::parse(
        "golite-trace v1\nz 1 1\n", out, &error));
    // Trailing garbage on a line.
    EXPECT_FALSE(ScheduleTrace::parse(
        "golite-trace v1\np 2 1 extra\n", out, &error));
    // Failure leaves the output untouched.
    out.decisions.push_back({DecisionKind::Pick, 2, 1});
    ScheduleTrace copy = out;
    EXPECT_FALSE(ScheduleTrace::parse("nonsense", out, nullptr));
    EXPECT_EQ(out, copy);
}

TEST(ScheduleTrace, CommentsAndRunLengthEncoding)
{
    ScheduleTrace out;
    std::string error;
    ASSERT_TRUE(ScheduleTrace::parse(
        "# leading comment\n"
        "golite-trace v1\n"
        "r 3\n"
        "# interior comment\n"
        "e 1\n",
        out, &error))
        << error;
    ASSERT_EQ(out.size(), 4u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(out.decisions[i].kind, DecisionKind::Preempt);
        EXPECT_EQ(out.decisions[i].pick, 0u);
    }
    EXPECT_EQ(out.decisions[3].pick, 1u);
}

TEST(ScheduleTrace, DecisionKindNamesAreExhaustive)
{
    ASSERT_EQ(kDecisionKindCount, 3);
    std::set<std::string> names;
    for (int i = 0; i < kDecisionKindCount; ++i)
        names.insert(decisionKindName(static_cast<DecisionKind>(i)));
    EXPECT_EQ(names.size(), 3u); // distinct, non-null
}

// --- Record / replay ----------------------------------------------

TEST(Replay, StrictReplayReproducesRecordedRun)
{
    for (uint64_t seed : {1u, 7u, 23u, 99u}) {
        ScheduleTrace trace;
        RunOptions rec = randomOptions(seed);
        rec.recordTrace = &trace;
        const RunReport recorded = run(sampleProgram, rec);

        RunOptions rep = randomOptions(seed + 1000); // seed ignored
        rep.replayTrace = &trace;
        const RunReport replayed = run(sampleProgram, rep);

        EXPECT_FALSE(replayed.replayDivergence.diverged);
        EXPECT_EQ(recorded.fingerprint(), replayed.fingerprint())
            << "seed " << seed;
    }
}

TEST(Replay, ReplayIsSeedIndependent)
{
    ScheduleTrace trace;
    RunOptions rec = randomOptions(42);
    rec.recordTrace = &trace;
    run(sampleProgram, rec);

    std::string first;
    for (uint64_t seed : {1u, 2u, 3u}) {
        RunOptions rep = randomOptions(seed);
        rep.replayTrace = &trace;
        const std::string fp =
            run(sampleProgram, rep).fingerprint();
        if (first.empty())
            first = fp;
        else
            EXPECT_EQ(first, fp);
    }
}

TEST(Replay, ReRecordingAReplayIsIdentity)
{
    ScheduleTrace trace;
    RunOptions rec = randomOptions(5);
    rec.recordTrace = &trace;
    run(sampleProgram, rec);

    ScheduleTrace again;
    RunOptions rep = randomOptions(6);
    rep.replayTrace = &trace;
    rep.recordTrace = &again;
    run(sampleProgram, rep);
    EXPECT_EQ(trace, again);
}

TEST(Replay, PrefixReplayFallsBackToDefaults)
{
    ScheduleTrace trace;
    RunOptions rec = randomOptions(9);
    rec.recordTrace = &trace;
    run(sampleProgram, rec);
    ASSERT_GT(trace.size(), 2u);

    // A strict prefix is still a valid strict-replay input: past the
    // end the scheduler takes defaults, never diverging.
    ScheduleTrace prefix;
    prefix.decisions.assign(trace.decisions.begin(),
                            trace.decisions.begin() + 2);
    RunOptions rep = randomOptions(1);
    rep.replayTrace = &prefix;
    const RunReport report = run(sampleProgram, rep);
    EXPECT_FALSE(report.replayDivergence.diverged);
    EXPECT_TRUE(report.completed);
}

TEST(Replay, EmptyTraceIsTheDefaultSchedule)
{
    ScheduleTrace empty;
    std::string first;
    for (int i = 0; i < 3; ++i) {
        RunOptions rep = randomOptions(100 + i);
        rep.replayTrace = &empty;
        const std::string fp =
            run(sampleProgram, rep).fingerprint();
        if (first.empty())
            first = fp;
        else
            EXPECT_EQ(first, fp);
    }
}

TEST(Replay, StrictDivergenceIsStructured)
{
    // Record the sample program, then replay against a program whose
    // first decisions offer a different shape.
    ScheduleTrace trace;
    trace.decisions.push_back({DecisionKind::SelectArm, 7, 3});

    RunOptions rep = randomOptions(1);
    rep.replayTrace = &trace;
    const RunReport report = run(sampleProgram, rep);

    ASSERT_TRUE(report.replayDivergence.diverged);
    EXPECT_FALSE(report.completed);
    EXPECT_EQ(report.replayDivergence.index, 0u);
    EXPECT_EQ(report.replayDivergence.expectedKind,
              DecisionKind::SelectArm);
    EXPECT_EQ(report.replayDivergence.expectedAlternatives, 7u);
    const std::string msg = report.replayDivergence.describe();
    EXPECT_NE(msg.find("decision 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("select-arm"), std::string::npos) << msg;
    // The divergence also dominates the human-readable report.
    EXPECT_NE(report.describe().find("replay divergence"),
              std::string::npos);
}

TEST(Replay, LooseReplayClampsInsteadOfDiverging)
{
    ScheduleTrace trace;
    trace.decisions.push_back({DecisionKind::SelectArm, 7, 3});

    RunOptions rep = randomOptions(1);
    rep.replayTrace = &trace;
    rep.replayStrict = false;
    const RunReport report = run(sampleProgram, rep);
    EXPECT_FALSE(report.replayDivergence.diverged);
    EXPECT_TRUE(report.completed);
}

TEST(Replay, RecordRequiresRandomPolicy)
{
    ScheduleTrace trace;
    RunOptions rec;
    rec.policy = SchedPolicy::Fifo;
    rec.recordTrace = &trace;
    EXPECT_THROW(run(sampleProgram, rec), std::logic_error);
}

TEST(Replay, ReplayConflictsWithChooser)
{
    ScheduleTrace trace;
    RunOptions rep = randomOptions(1);
    rep.replayTrace = &trace;
    rep.chooser = [](size_t) { return size_t{0}; };
    EXPECT_THROW(run(sampleProgram, rep), std::logic_error);
}

// --- Coverage -----------------------------------------------------

TEST(Coverage, MapDeduplicatesAcrossMerges)
{
    fuzz::CoverageMap map;
    EXPECT_EQ(map.merge({1, 2, 3}), 3u);
    EXPECT_EQ(map.merge({2, 3, 4}), 1u);
    EXPECT_EQ(map.size(), 4u);
    EXPECT_TRUE(map.contains(4));
    EXPECT_FALSE(map.contains(5));
}

TEST(Coverage, ProbesAreDeterministicPerSchedule)
{
    auto observe = [](uint64_t seed) {
        fuzz::BlockingCoverage blocking;
        fuzz::AccessCoverage access;
        blocking.beginRun();
        access.beginRun();
        RunOptions ro = randomOptions(seed);
        ro.subscribers.push_back(&blocking);
        ro.subscribers.push_back(&access);
        run(sampleProgram, ro);
        std::vector<uint64_t> all = blocking.observed();
        all.insert(all.end(), access.observed().begin(),
                   access.observed().end());
        return all;
    };
    EXPECT_EQ(observe(3), observe(3));
    EXPECT_FALSE(observe(3).empty());
}

TEST(Coverage, DifferentSchedulesReachDifferentStates)
{
    // Unbuffered rendezvous: which goroutine parks first (and who
    // else is already parked) differs per schedule, so the blocked-
    // set fingerprints must keep growing past the first run.
    auto rendezvous = [] {
        Chan<int> c = makeChan<int>();
        Chan<int> d = makeChan<int>();
        go("p1", [c] { c.send(1); });
        go("p2", [d] { d.send(2); });
        c.recv();
        d.recv();
    };
    fuzz::CoverageMap map;
    size_t growth_runs = 0;
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        fuzz::AccessCoverage access;
        fuzz::BlockingCoverage blocking;
        access.beginRun();
        blocking.beginRun();
        RunOptions ro = randomOptions(seed * 131);
        ro.subscribers.push_back(&access);
        ro.subscribers.push_back(&blocking);
        run(rendezvous, ro);
        size_t fresh = map.merge(access.observed());
        fresh += map.merge(blocking.observed());
        if (fresh > 0)
            growth_runs++;
    }
    // The first run always grows the map; schedule variety must add
    // more than that single run's worth.
    EXPECT_GT(growth_runs, 1u);
}

// --- Mutation -----------------------------------------------------

TEST(Mutation, MutantsStayStructurallyValid)
{
    ScheduleTrace trace;
    RunOptions rec = randomOptions(11);
    rec.recordTrace = &trace;
    run(sampleProgram, rec);
    ASSERT_FALSE(trace.empty());

    Rng rng(77);
    for (int i = 0; i < 200; ++i) {
        const ScheduleTrace mutant = fuzz::mutateTrace(trace, rng);
        ASSERT_LE(mutant.size(), trace.size());
        ASSERT_FALSE(mutant.empty());
        for (const Decision &d : mutant.decisions) {
            EXPECT_GE(d.alternatives, 2u);
            EXPECT_LT(d.pick, d.alternatives);
        }
    }
}

TEST(Mutation, MutantsAreLooseReplayableAndNormalizable)
{
    ScheduleTrace trace;
    RunOptions rec = randomOptions(13);
    rec.recordTrace = &trace;
    run(sampleProgram, rec);

    Rng rng(5);
    for (int i = 0; i < 30; ++i) {
        const ScheduleTrace mutant = fuzz::mutateTrace(trace, rng);
        ScheduleTrace normalized;
        RunOptions rep = randomOptions(1);
        rep.replayTrace = &mutant;
        rep.replayStrict = false;
        rep.recordTrace = &normalized;
        const RunReport loose = run(sampleProgram, rep);
        EXPECT_FALSE(loose.replayDivergence.diverged);

        // The re-recorded form replays *strictly* to the same run.
        RunOptions strict = randomOptions(2);
        strict.replayTrace = &normalized;
        const RunReport again = run(sampleProgram, strict);
        EXPECT_FALSE(again.replayDivergence.diverged);
        EXPECT_EQ(loose.fingerprint(), again.fingerprint());
    }
}

// --- Fuzzer -------------------------------------------------------

TEST(Fuzzer, RejectsPreattachedHooksAndTraces)
{
    const corpus::BugCase *bug = corpus::findBug("cockroach-6111");
    ASSERT_NE(bug, nullptr);
    fuzz::FuzzOptions fo;
    fo.runOptions.policy = SchedPolicy::Pct;
    EXPECT_THROW(
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo),
        std::logic_error);

    fuzz::FuzzOptions fo2;
    fuzz::BlockingCoverage probe;
    fo2.runOptions.subscribers.push_back(&probe);
    EXPECT_THROW(
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo2),
        std::logic_error);

    fuzz::FuzzOptions fo3;
    ScheduleTrace t;
    fo3.runOptions.recordTrace = &t;
    EXPECT_THROW(
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo3),
        std::logic_error);
}

TEST(Fuzzer, FindsAScheduleDependentBugDeterministically)
{
    // cockroach-6111's lost increment needs a specific interleaving
    // (4/20 random seeds manifest); the fuzzer must find it and two
    // identical campaigns must agree decision for decision.
    const corpus::BugCase *bug = corpus::findBug("cockroach-6111");
    ASSERT_NE(bug, nullptr);

    fuzz::FuzzOptions fo;
    fo.maxExecutions = 500;
    fo.workers = 1;
    fo.fuzzSeed = 1;
    const fuzz::FuzzResult a =
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo);
    const fuzz::FuzzResult b =
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo);

    ASSERT_TRUE(a.bugFound);
    EXPECT_GT(a.executionsToBug, 0u);
    EXPECT_LE(a.executionsToBug, a.executions);
    EXPECT_EQ(a.executionsToBug, b.executionsToBug);
    EXPECT_EQ(a.bugTrace, b.bugTrace);
    EXPECT_EQ(a.coverageStates, b.coverageStates);

    // The reported trace replays to the reported run, exactly.
    RunOptions rep;
    rep.policy = SchedPolicy::Random;
    rep.replayTrace = &a.bugTrace;
    const corpus::BugOutcome out =
        bug->run(corpus::Variant::Buggy, rep);
    EXPECT_TRUE(out.manifested);
    EXPECT_EQ(out.report.fingerprint(), a.bugReport.fingerprint());
}

TEST(Fuzzer, ParallelCampaignStillFindsTheBug)
{
    const corpus::BugCase *bug = corpus::findBug("cockroach-6111");
    ASSERT_NE(bug, nullptr);
    fuzz::FuzzOptions fo;
    fo.maxExecutions = 800;
    fo.workers = 3;
    const fuzz::FuzzResult r =
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo);
    ASSERT_TRUE(r.bugFound);
    RunOptions rep;
    rep.policy = SchedPolicy::Random;
    rep.replayTrace = &r.bugTrace;
    EXPECT_TRUE(bug->run(corpus::Variant::Buggy, rep).manifested);
}

TEST(Fuzzer, RaceDetectorModeSeesDetectorOnlyBugs)
{
    // docker-22985's defect never misbehaves observably — only the
    // detector sees it, as in the original -race report.
    const corpus::BugCase *bug = corpus::findBug("docker-22985");
    ASSERT_NE(bug, nullptr);

    fuzz::FuzzOptions plain;
    plain.maxExecutions = 60;
    EXPECT_FALSE(
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, plain)
            .bugFound);

    fuzz::FuzzOptions raced = plain;
    raced.attachRaceDetector = true;
    const fuzz::FuzzResult r =
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, raced);
    ASSERT_TRUE(r.bugFound);
    EXPECT_FALSE(r.bugReport.raceMessages.empty());
}

TEST(Fuzzer, FuzzProgramUsesTheReportPredicate)
{
    const fuzz::FuzzResult r = fuzz::fuzzProgram(
        sampleProgram,
        [](const RunReport &report) { return !report.completed; },
        {});
    // The sample program completes under every schedule.
    EXPECT_FALSE(r.bugFound);
    EXPECT_GT(r.coverageStates, 0u);
    EXPECT_GT(r.poolSize, 0u);
}

// --- Shrinker -----------------------------------------------------

TEST(Shrink, NonTriggeringInputIsReportedNotShrunk)
{
    const corpus::BugCase *bug = corpus::findBug("cockroach-6111");
    ASSERT_NE(bug, nullptr);
    ScheduleTrace empty; // default schedule: 6 increments, no bug
    const fuzz::ShrinkResult r = fuzz::shrinkKernelTrace(
        *bug, corpus::Variant::Buggy, empty);
    EXPECT_FALSE(r.stillBug);
    EXPECT_EQ(r.executions, 1u);
}

TEST(Shrink, ShrinksAFoundTraceToATriggeringCore)
{
    const corpus::BugCase *bug = corpus::findBug("cockroach-6111");
    ASSERT_NE(bug, nullptr);

    fuzz::FuzzOptions fo;
    fo.maxExecutions = 500;
    const fuzz::FuzzResult found =
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo);
    ASSERT_TRUE(found.bugFound);

    const fuzz::ShrinkResult shrunk = fuzz::shrinkKernelTrace(
        *bug, corpus::Variant::Buggy, found.bugTrace);
    ASSERT_TRUE(shrunk.stillBug);
    EXPECT_TRUE(shrunk.locallyMinimal);
    EXPECT_LE(shrunk.trace.size(), found.bugTrace.size());

    // The minimized guidance trace still triggers under loose replay.
    RunOptions rep;
    rep.policy = SchedPolicy::Random;
    rep.replayTrace = &shrunk.trace;
    rep.replayStrict = false;
    EXPECT_TRUE(bug->run(corpus::Variant::Buggy, rep).manifested);

    // And its normalized form triggers under *strict* replay.
    RunOptions strict;
    strict.policy = SchedPolicy::Random;
    strict.replayTrace = &shrunk.normalized;
    const corpus::BugOutcome golden =
        bug->run(corpus::Variant::Buggy, strict);
    EXPECT_TRUE(golden.manifested);
    EXPECT_FALSE(golden.report.replayDivergence.diverged);
    EXPECT_EQ(golden.report.fingerprint(),
              shrunk.report.fingerprint());
}

} // namespace
} // namespace golite
