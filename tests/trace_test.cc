/**
 * @file
 * Execution-trace recorder tests (the `go tool trace` analogue):
 * event sequencing, wait-reason capture, clock advances, and the
 * off-by-default contract.
 */

#include <gtest/gtest.h>

#include <string>

#include "golite/golite.hh"

namespace golite
{
namespace
{

std::vector<TraceEvent>
traced(const std::function<void()> &program,
       SchedPolicy policy = SchedPolicy::Fifo)
{
    RunOptions options;
    options.collectTrace = true;
    options.policy = policy;
    return run(program, options).trace;
}

TEST(Trace, OffByDefault)
{
    RunReport report = run([] {
        go([] {});
        yield();
    });
    EXPECT_TRUE(report.trace.empty());
}

TEST(Trace, RecordsSpawnDispatchFinish)
{
    auto trace = traced([] { go("worker", [] {}); });
    // main dispatch, worker spawn, main finish, worker dispatch,
    // worker finish — in FIFO order.
    std::vector<std::pair<TraceKind, uint64_t>> expected = {
        {TraceKind::Dispatch, 1}, {TraceKind::Spawn, 2},
        {TraceKind::Finish, 1},   {TraceKind::Dispatch, 2},
        {TraceKind::Finish, 2},
    };
    ASSERT_EQ(trace.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(trace[i].kind, expected[i].first) << i;
        EXPECT_EQ(trace[i].gid, expected[i].second) << i;
    }
    EXPECT_EQ(trace[1].detail, "worker");
}

TEST(Trace, ParkCarriesTheWaitReason)
{
    auto trace = traced([] {
        Chan<int> ch = makeChan<int>();
        go([ch] { ch.send(5); });
        ch.recv();
    });
    bool saw_park = false;
    for (const TraceEvent &ev : trace) {
        if (ev.kind == TraceKind::Park && ev.gid == 1) {
            EXPECT_EQ(ev.detail, "chan receive");
            saw_park = true;
        }
    }
    EXPECT_TRUE(saw_park);
}

TEST(Trace, UnparkFollowsTheSenderHandoff)
{
    auto trace = traced([] {
        Chan<int> ch = makeChan<int>();
        go([ch] { ch.send(5); });
        ch.recv();
    });
    // Order: main parks (recv), sender runs, main unparks.
    int park_at = -1, unpark_at = -1;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].gid != 1)
            continue;
        if (trace[i].kind == TraceKind::Park)
            park_at = static_cast<int>(i);
        if (trace[i].kind == TraceKind::Unpark)
            unpark_at = static_cast<int>(i);
    }
    ASSERT_GE(park_at, 0);
    ASSERT_GE(unpark_at, 0);
    EXPECT_LT(park_at, unpark_at);
}

TEST(Trace, ClockAdvancesAreRecorded)
{
    auto trace = traced([] { gotime::sleep(5 * gotime::kMillisecond); });
    bool saw_clock = false;
    for (const TraceEvent &ev : trace) {
        if (ev.kind == TraceKind::ClockAdvance) {
            EXPECT_EQ(ev.detail, "5000us");
            saw_clock = true;
        }
    }
    EXPECT_TRUE(saw_clock);
}

TEST(Trace, FormatTraceIsReadable)
{
    RunOptions options;
    options.collectTrace = true;
    options.policy = SchedPolicy::Fifo;
    RunReport report = run([] {
        go("helper", [] { gotime::sleep(gotime::kMillisecond); });
        gotime::sleep(2 * gotime::kMillisecond); // outlive the helper
    }, options);
    const std::string text = report.formatTrace();
    EXPECT_NE(text.find("spawn (helper)"), std::string::npos);
    EXPECT_NE(text.find("park (sleep)"), std::string::npos);
    EXPECT_NE(text.find("clock -> 1000us"), std::string::npos);
    EXPECT_NE(text.find("finish"), std::string::npos);
}

TEST(Trace, DeterministicPerSeed)
{
    auto once = [] {
        RunOptions options;
        options.collectTrace = true;
        options.seed = 77;
        return run([] {
            WaitGroup wg;
            wg.add(3);
            for (int i = 0; i < 3; ++i) {
                go([&] {
                    yield();
                    wg.done();
                });
            }
            wg.wait();
        }, options).trace;
    };
    auto a = once();
    auto b = once();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].gid, b[i].gid);
        EXPECT_EQ(a[i].tick, b[i].tick);
    }
}

} // namespace
} // namespace golite
