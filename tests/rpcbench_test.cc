/**
 * @file
 * Table 3 experiment tests: both server styles must process every
 * request cleanly, and the headline shape must hold — the Go-style
 * server creates far more execution units, each living a far smaller
 * fraction of the run than the C-style pool threads (Observation 1).
 */

#include <gtest/gtest.h>

#include "rpcbench/rpc.hh"

namespace golite::rpcbench
{
namespace
{

class EveryWorkload : public ::testing::TestWithParam<Workload>
{
};

TEST_P(EveryWorkload, GoStyleServesAllRequestsCleanly)
{
    const Workload &workload = GetParam();
    DynamicStats stats = runGoStyleServer(workload);
    EXPECT_TRUE(stats.clean);
    EXPECT_EQ(stats.responses,
              static_cast<uint64_t>(workload.connections *
                                    workload.requestsPerConnection));
}

TEST_P(EveryWorkload, CStyleServesAllRequestsCleanly)
{
    const Workload &workload = GetParam();
    DynamicStats stats = runCStyleServer(workload);
    EXPECT_TRUE(stats.clean);
    EXPECT_EQ(stats.responses,
              static_cast<uint64_t>(workload.connections *
                                    workload.requestsPerConnection));
}

TEST_P(EveryWorkload, GoroutineToThreadShapeMatchesObservation1)
{
    const Workload &workload = GetParam();
    DynamicStats go_stats = runGoStyleServer(workload);
    DynamicStats c_stats = runCStyleServer(workload);

    // Many more goroutines than threads (Table 3 ratios are large).
    EXPECT_GT(go_stats.unitsCreated, 4 * c_stats.unitsCreated)
        << workload.name;

    // Goroutines are short-lived relative to the run; pool threads
    // live essentially the whole run.
    EXPECT_LT(go_stats.normalizedLifetime, 0.65) << workload.name;
    EXPECT_GT(c_stats.normalizedLifetime, 0.90) << workload.name;
}

TEST_P(EveryWorkload, DeterministicPerSeed)
{
    const Workload &workload = GetParam();
    DynamicStats a = runGoStyleServer(workload, 9);
    DynamicStats b = runGoStyleServer(workload, 9);
    EXPECT_EQ(a.unitsCreated, b.unitsCreated);
    EXPECT_DOUBLE_EQ(a.normalizedLifetime, b.normalizedLifetime);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, EveryWorkload, ::testing::ValuesIn(workloads()),
    [](const ::testing::TestParamInfo<Workload> &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(RpcBench, GoroutineCountScalesWithLoad)
{
    Workload small = workloads()[0];
    Workload big = small;
    big.connections *= 4;
    EXPECT_GT(runGoStyleServer(big).unitsCreated,
              runGoStyleServer(small).unitsCreated * 3);
}

TEST(RpcBench, PoolSizeBoundsCStyleThreads)
{
    DynamicStats stats = runCStyleServer(workloads()[0], 7);
    EXPECT_EQ(stats.unitsCreated, 7u);
}

} // namespace
} // namespace golite::rpcbench
