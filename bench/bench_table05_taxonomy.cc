/**
 * @file
 * Table 5: the two-dimensional bug taxonomy over all 171 studied
 * bugs, per application.
 */

#include <cstdio>

#include "bench_util.hh"
#include "study/tables.hh"

int
main()
{
    golite::bench::banner("Table 5 - Bug taxonomy",
                          "Tu et al., ASPLOS 2019, Table 5");
    std::printf("%s\n", golite::study::renderTable5().c_str());
    std::printf(
        "Shape check (paper): 85 blocking vs 86 non-blocking; 105\n"
        "shared-memory vs 66 message-passing causes across 171 bugs.\n");
    return 0;
}
