/**
 * @file
 * The paper's nine Observations and eight Implications, each paired
 * with the measurement from this reproduction that backs it. A
 * one-binary summary of the whole study.
 */

#include <cstdio>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "race/detector.hh"
#include "rpcbench/rpc.hh"
#include "scanner/counter.hh"
#include "scanner/generator.hh"
#include "study/stats.hh"
#include "study/tables.hh"
#include "vet/vet.hh"

using namespace golite;

namespace
{

int g_index = 0;

void
item(const char *kind, const char *claim, const std::string &evidence)
{
    std::printf("%s %d: %s\n   measured: %s\n\n", kind, g_index, claim,
                evidence.c_str());
}

std::string
num(double v, int digits = 2)
{
    return study::TextTable::num(v, digits);
}

} // namespace

int
main()
{
    bench::banner("Observations & Implications, with evidence",
                  "Tu et al., ASPLOS 2019, Sections 3-6 (summary)");

    // ------------------------------------------------ Observations
    std::printf("--- Observations ---------------------------------\n\n");
    g_index = 1;
    {
        auto w = rpcbench::workloads()[0];
        auto go_stats = rpcbench::runGoStyleServer(w);
        auto c_stats = rpcbench::runCStyleServer(w);
        item("Observation", // 1
             "Goroutines are shorter but created more frequently than "
             "C threads.",
             std::to_string(go_stats.unitsCreated) + " goroutines vs " +
                 std::to_string(c_stats.unitsCreated) +
                 " threads on one workload; normalized lifetime " +
                 num(100 * go_stats.normalizedLifetime, 1) + "% vs " +
                 num(100 * c_stats.normalizedLifetime, 1) + "%");
    }
    g_index = 2;
    {
        scanner::UsageCounts counts = scanner::countUsage(
            scanner::generateSource(scanner::goAppProfiles()[0], 1));
        item("Observation", // 2
             "Shared memory synchronization is still heavily used, but "
             "Go programs use significant message passing too.",
             "Docker corpus: " +
                 std::to_string(counts.sharedMemoryPrimitives()) +
                 " shared-memory vs " +
                 std::to_string(counts.messagePassingPrimitives()) +
                 " message-passing primitive usages");
    }
    g_index = 3;
    {
        auto counts = study::causeCounts(corpus::Behavior::Blocking);
        const int shared = counts[corpus::SubCause::Mutex] +
                           counts[corpus::SubCause::RWMutex] +
                           counts[corpus::SubCause::Wait];
        item("Observation", // 3
             "More blocking bugs are caused by message passing than by "
             "shared memory, against the common belief.",
             std::to_string(shared) + " shared-memory vs " +
                 std::to_string(85 - shared) +
                 " message-passing blocking bugs (42% / 58%)");
    }
    g_index = 4;
    {
        item("Observation", // 4
             "Most shared-memory blocking bugs match traditional "
             "causes, but some need Go's new implementation (RWMutex "
             "writer priority) or semantics (WaitGroup).",
             "corpus kernels cockroach-10214 (writer-priority "
             "deadlock) and docker-25384 (Figure 5) reproduce the "
             "Go-specific cases");
    }
    g_index = 5;
    {
        const corpus::BugCase *fig1 = corpus::findBug("kubernetes-5316");
        auto outcome = fig1->run(corpus::Variant::Buggy, {});
        item("Observation", // 5
             "Message-passing blocking bugs come from channel rules "
             "and from combining channels with other features.",
             "Figure 1 kernel leaks " +
                 std::to_string(outcome.report.leaked.size()) +
                 " goroutine at chan send; Figure 7 kernel entangles "
                 "a channel with a mutex");
    }
    g_index = 6;
    {
        std::vector<int> sizes;
        for (const auto &rec : study::database()) {
            if (rec.behavior == corpus::Behavior::Blocking)
                sizes.push_back(rec.patchLines);
        }
        item("Observation", // 6
             "Blocking bugs have simple, cause-correlated fixes.",
             "mean patch " + num(study::mean(sizes), 1) +
                 " lines; lift(Mutex,Move)=" +
                 num(study::liftCauseStrategy(
                     corpus::Behavior::Blocking, corpus::SubCause::Mutex,
                     corpus::FixStrategy::MoveSync)) +
                 ", lift(Chan,Add)=" +
                 num(study::liftCauseStrategy(
                     corpus::Behavior::Blocking, corpus::SubCause::Chan,
                     corpus::FixStrategy::AddSync)));
    }
    g_index = 7;
    {
        auto counts = study::causeCounts(corpus::Behavior::NonBlocking);
        item("Observation", // 7
             "About two thirds of shared-memory non-blocking bugs are "
             "traditional; Go's new semantics/libraries cause the "
             "rest.",
             "traditional " +
                 std::to_string(counts[corpus::SubCause::Traditional]) +
                 " of " +
                 std::to_string(
                     counts[corpus::SubCause::Traditional] +
                     counts[corpus::SubCause::AnonymousFunction] +
                     counts[corpus::SubCause::WaitGroupMisuse] +
                     counts[corpus::SubCause::LibShared]) +
                 " shared-memory non-blocking bugs");
    }
    g_index = 8;
    {
        auto counts = study::causeCounts(corpus::Behavior::NonBlocking);
        item("Observation", // 8
             "Far fewer non-blocking bugs come from message passing.",
             "chan " +
                 std::to_string(counts[corpus::SubCause::ChanMisuse]) +
                 " + lib " +
                 std::to_string(counts[corpus::SubCause::LibMessage]) +
                 " of 86 non-blocking bugs");
    }
    g_index = 9;
    {
        auto matrix = study::fixPrimitiveMatrix();
        int mutex_total = 0, chan_total = 0;
        for (const auto &[cause, prims] : matrix) {
            (void)cause;
            for (const auto &[p, c] : prims) {
                if (p == corpus::FixPrimitive::Mutex)
                    mutex_total += c;
                if (p == corpus::FixPrimitive::Channel)
                    chan_total += c;
            }
        }
        item("Observation", // 9
             "Mutex remains the top fix primitive, but channel is "
             "second and fixes shared-memory bugs too.",
             "Mutex in " + std::to_string(mutex_total) +
                 " patches, Channel in " + std::to_string(chan_total) +
                 " (incl. shared-memory causes)");
    }

    // ------------------------------------------------ Implications
    std::printf("--- Implications ----------------------------------\n\n");
    g_index = 1;
    item("Implication",
         "Heavier goroutine/new-primitive usage may mean more "
         "concurrency bugs.",
         "64 corpus kernels across every Table 6/9 category "
         "demonstrate the failure modes");
    g_index = 2;
    item("Implication",
         "Contrary to belief, message passing caused more blocking "
         "bugs; tools are needed.",
         "49/85 of the studied blocking bugs; 14/21 of the reproduced "
         "set are message-passing");
    g_index = 3;
    item("Implication",
         "High cause-fix correlation suggests automated fixing is "
         "promising.",
         "every corpus kernel carries its real fix strategy; fixed "
         "variants pass 0-misbehaviour sweeps");
    g_index = 4;
    {
        int builtin = 0, vet_hits = 0, used = 0;
        for (const corpus::BugCase *bug : corpus::bugsByBehavior(
                 corpus::Behavior::Blocking, true)) {
            used++;
            auto seed = bench::findManifestingSeed(*bug);
            vet::BlockingVet checker;
            RunOptions options;
            options.seed = seed.value_or(0);
            options.subscribers.push_back(&checker);
            auto outcome = bug->run(corpus::Variant::Buggy, options);
            builtin += outcome.report.globalDeadlock;
            vet_hits += !checker.reports().empty();
        }
        item("Implication",
             "The built-in deadlock detector is ineffective; novel "
             "blocking detection is needed.",
             "built-in " + std::to_string(builtin) + "/" +
                 std::to_string(used) +
                 "; golite-vet (this repo's follow-up) adds " +
                 std::to_string(vet_hits) +
                 " pattern detections on the same runs");
    }
    g_index = 5;
    item("Implication",
         "Go's new programming models themselves breed bugs.",
         "anonymous-function (Figure 8), WaitGroup (Figure 9), and "
         "library (Figures 6/12) kernels all manifest");
    g_index = 6;
    item("Implication",
         "Correct message passing is less racy, but misuse is hard to "
         "find when combined with other features.",
         "select+ticker kernel (Figure 11) manifests on a fraction of "
         "seeds only; double close (Figure 10) needs a racing gap");
    g_index = 7;
    item("Implication",
         "Programmers sometimes prefer channels even to fix "
         "shared-memory bugs.",
         "Table 11: Channel used in 19 patches, including 3 "
         "traditional and 2 anonymous-function causes");
    g_index = 8;
    {
        int detected = 0;
        for (const corpus::BugCase *bug : corpus::bugsByBehavior(
                 corpus::Behavior::NonBlocking, true)) {
            for (uint64_t seed = 0; seed < 100; ++seed) {
                race::Detector detector;
                RunOptions options;
                options.seed = seed;
                options.subscribers.push_back(&detector);
                bug->run(corpus::Variant::Buggy, options);
                if (!detector.reports().empty()) {
                    detected++;
                    break;
                }
            }
        }
        item("Implication",
             "A traditional race detector cannot catch all Go "
             "non-blocking bugs.",
             std::to_string(detected) +
                 "/20 detected in 100-run sweeps; the misses are "
                 "non-race bugs by construction");
    }
    return 0;
}
