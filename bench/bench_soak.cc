/**
 * @file
 * bench_soak: the million-goroutine soak evaluation — open-loop load
 * over real epoll sockets at several live-goroutine concurrency
 * tiers, bare and with the race / wait-graph detectors subscribed.
 *
 * Each tier fixes a target concurrency C and derives the arrival rate
 * from Little's law (rate = C / (serviceTime * (1 + fanout))), so the
 * steady-state live-goroutine count is the independent variable and
 * throughput/latency/detector-overhead are the measurements. Detector
 * overhead is reported as a CPU-time ratio against the bare run at
 * the same tier: under an open-loop schedule a keeping-up server
 * shows identical throughput no matter how expensive the detector is
 * — the cost surfaces in CPU burned and in the latency tail, so both
 * are emitted.
 *
 * Tier sets (GOLITE_SOAK_TIERS): "smoke" (default, ~2k live
 * goroutines — the CI configuration), "full" (2k/10k/100k — the
 * local acceptance run), "stretch" (adds the documented 1M tier).
 * GOLITE_SOAK_MIN_RPS, when set, is a hard floor on every bare
 * tier's achieved throughput (CI's regression gate).
 *
 * Output: BENCH_soak.json through the shared bench_json emitter,
 * plus BENCH_soak_schema.json — the structural fingerprint CI diffs
 * against baselines/BENCH_soak_schema.json so the document shape
 * cannot drift silently.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "bench_json.hh"
#include "golite/golite.hh"

using namespace golite;

namespace
{

/** One concurrency tier of the evaluation. */
struct Tier
{
    const char *name;
    uint64_t targetLive;    ///< goal for peak live goroutines
    double rps;             ///< derived arrival rate
    gotime::Duration service;
    uint32_t fanout;
    gotime::Duration duration;
    uint32_t connections;
    /**
     * Detector configs to run at this tier. The race detector's
     * per-event cost tracks *live* goroutines (slot-recycled sparse
     * clocks + shadow reclamation), so it keeps the open-loop
     * schedule through the 10k tier; 100k and up remain
     * waitgraph-only — there the detector's O(live) lifecycle work
     * alone outruns a single core. The wait-graph detector's
     * per-event cost is O(1) and rides along at every tier.
     */
    bool raceConfig;
    bool waitgraphConfig;
};

double
cpuSeconds()
{
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    auto tv = [](const timeval &t) {
        return static_cast<double>(t.tv_sec) +
               static_cast<double>(t.tv_usec) / 1e6;
    };
    return tv(ru.ru_utime) + tv(ru.ru_stime);
}

load::SoakOptions
tierOptions(const Tier &tier)
{
    load::SoakOptions opts;
    opts.connections = tier.connections;
    opts.targetRps = tier.rps;
    opts.durationNs = tier.duration;
    opts.serviceTimeNs = tier.service;
    opts.fanout = tier.fanout;
    opts.payloadBytes = 64;
    opts.seed = 42;
    // In-flight requests need a full service time past the arrival
    // window, plus slack for a backlogged server to clear its queue.
    opts.drainTimeoutNs = tier.service + 10 * gotime::kSecond;
    return opts;
}

struct Measured
{
    load::SoakResult res;
    double cpuSec = 0;
    bool ok = false;
};

Measured
measure(const Tier &tier, std::vector<Subscriber *> subscribers,
        const char *config)
{
    load::SoakOptions opts = tierOptions(tier);
    opts.subscribers = std::move(subscribers);
    const double cpu0 = cpuSeconds();
    Measured m;
    m.res = load::runSoak(opts);
    m.cpuSec = cpuSeconds() - cpu0;
    m.ok = m.res.ok();
    std::printf("%-10s %-10s rps=%8.0f live=%8llu resp=%8llu "
                "p50=%8.2fms p99=%8.2fms p999=%8.2fms cpu=%6.2fs%s\n",
                tier.name, config, m.res.achievedRps,
                static_cast<unsigned long long>(
                    m.res.peakLiveGoroutines),
                static_cast<unsigned long long>(m.res.responses),
                m.res.latency.quantile(0.50) / 1e6,
                m.res.latency.quantile(0.99) / 1e6,
                m.res.latency.quantile(0.999) / 1e6, m.cpuSec,
                m.ok ? "" : "  [NOT CLEAN]");
    if (!m.ok)
        std::printf("    report: sent=%llu resp=%llu dropped=%llu "
                    "connErrors=%llu\n%s\n",
                    static_cast<unsigned long long>(
                        m.res.requestsSent),
                    static_cast<unsigned long long>(m.res.responses),
                    static_cast<unsigned long long>(m.res.dropped),
                    static_cast<unsigned long long>(m.res.connErrors),
                    m.res.report.describe().c_str());
    return m;
}

std::vector<std::pair<std::string, double>>
extrasFor(const Measured &m, const Measured &bare)
{
    const RunMetrics &rm = m.res.report.metrics;
    const double mean_life =
        rm.lifetimesCounted > 0
            ? static_cast<double>(rm.lifetimeSumNs) /
                  static_cast<double>(rm.lifetimesCounted)
            : 0.0;
    std::vector<std::pair<std::string, double>> extras = {
        {"p50_ns", static_cast<double>(m.res.latency.quantile(0.50))},
        {"p99_ns", static_cast<double>(m.res.latency.quantile(0.99))},
        {"p999_ns",
         static_cast<double>(m.res.latency.quantile(0.999))},
        {"max_ns", static_cast<double>(m.res.latency.maxValue())},
        {"responses", static_cast<double>(m.res.responses)},
        {"dropped", static_cast<double>(m.res.dropped)},
        {"peak_live_goroutines",
         static_cast<double>(m.res.peakLiveGoroutines)},
        {"goroutines_created",
         static_cast<double>(m.res.goroutinesCreated)},
        {"mean_goroutine_lifetime_ns", mean_life},
        {"cpu_seconds", m.cpuSec},
        {"cpu_overhead_ratio",
         bare.cpuSec > 0 ? m.cpuSec / bare.cpuSec : 0.0},
        {"p99_overhead_ratio",
         bare.res.latency.quantile(0.99) > 0
             ? static_cast<double>(m.res.latency.quantile(0.99)) /
                   static_cast<double>(
                       bare.res.latency.quantile(0.99))
             : 0.0},
    };
    // Race-detector rows also report the detector's memory footprint
    // (race::Detector::finalizeRun -> RunMetrics::detector), so a
    // regression that re-couples detector state to ever-created
    // goroutines or ever-touched addresses shows up in the artifact,
    // not just in CPU time.
    if (rm.detector.collected) {
        const auto &fp = rm.detector;
        extras.push_back({"peak_clock_slots",
                          static_cast<double>(fp.peakClockSlots)});
        extras.push_back(
            {"slot_space", static_cast<double>(fp.slotSpace)});
        extras.push_back({"peak_shadow_entries",
                          static_cast<double>(fp.peakShadowEntries)});
        extras.push_back(
            {"shadow_freed", static_cast<double>(fp.shadowFreed)});
        extras.push_back({"detector_arena_bytes",
                          static_cast<double>(fp.arenaBytes)});
    }
    return extras;
}

/**
 * Detection under load: a connection whose reader can never be
 * answered (the peer holds it open and silent) amid thousands of
 * healthy sleeping goroutines; the wait-graph detector must classify
 * the leak as NetIoStuck at end of run.
 */
bool
stuckConnDetected(double *wall_seconds)
{
    waitgraph::Detector detector;
    RunOptions ro;
    ro.realTime = true;
    ro.policy = SchedPolicy::Fifo;
    ro.subscribers = {&detector};
    const double cpu0 = cpuSeconds();
    RunReport report = run(
        [] {
            netpoll::Poller poller;
            auto ln = poller.listen(0);
            auto conn = poller.dial(ln.port());
            go("stuck-reader", [conn] {
                std::string buf;
                conn.read(buf); // silent peer: never ready
            });
            // Background load: 2000 goroutines sleeping in the timer
            // wheel while the stuck reader waits.
            WaitGroup wg;
            for (int i = 0; i < 2000; ++i) {
                wg.add(1);
                go("load", [&wg] {
                    gotime::sleep(20 * gotime::kMillisecond);
                    wg.done();
                });
            }
            wg.wait();
        },
        ro);
    *wall_seconds = cpuSeconds() - cpu0;
    for (const PartialDeadlock &pd : report.partialDeadlocks)
        if (pd.cause == DeadlockCause::NetIoStuck)
            return true;
    return false;
}

bool
writeText(const char *path, const std::string &text)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::perror(path);
        return false;
    }
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    return ok;
}

} // namespace

int
main()
{
    // Progress must be visible while a multi-minute tier runs, even
    // through a pipe.
    std::setvbuf(stdout, nullptr, _IONBF, 0);
    const char *mode_env = std::getenv("GOLITE_SOAK_TIERS");
    const std::string mode = mode_env ? mode_env : "smoke";

    // rate = targetLive / (service * (1 + fanout)).
    std::vector<Tier> tiers = {
        {"soak_2k", 2'000, 5'000, 200 * gotime::kMillisecond, 1,
         1 * gotime::kSecond, 16, true, true},
    };
    if (mode == "race-smoke") {
        // The CI race-at-concurrency lane: just the 10k tier, bare
        // (for the overhead ratio and the GOLITE_SOAK_MIN_RPS floor)
        // plus the race detector, which must keep the open-loop
        // schedule with 10k goroutines live.
        tiers.clear();
        tiers.push_back({"soak_10k", 10'000, 6'250,
                         400 * gotime::kMillisecond, 3,
                         1'500 * gotime::kMillisecond, 32, true,
                         false});
    }
    if (mode == "full" || mode == "stretch") {
        tiers.push_back({"soak_10k", 10'000, 6'250,
                         400 * gotime::kMillisecond, 3,
                         1'500 * gotime::kMillisecond, 32, true,
                         true});
        tiers.push_back({"soak_100k", 100'000, 10'000,
                         1 * gotime::kSecond, 9, 3 * gotime::kSecond,
                         64, false, true});
    }
    if (mode == "stretch")
        // The documented 1M tier. The binding constraint is spawn
        // rate, not memory: one core sustains ~50k goroutine
        // lifecycles/second, so a million concurrent residents need a
        // long service time (Little's law with rate capped), not a
        // fast arrival rate: 500 rps x 20s service x fanout 99.
        tiers.push_back({"soak_1m", 1'000'000, 500,
                         20 * gotime::kSecond, 99,
                         30 * gotime::kSecond, 64, false, false});

    bench::JsonReport report;
    bool all_clean = true;
    double min_bare_rps = -1;

    for (const Tier &tier : tiers) {
        Measured bare = measure(tier, {}, "bare");
        all_clean &= bare.ok;
        if (min_bare_rps < 0 || bare.res.achievedRps < min_bare_rps)
            min_bare_rps = bare.res.achievedRps;
        // The tier must actually reach (most of) its concurrency goal,
        // or the headline "N live goroutines" claim is hollow.
        if (bare.res.peakLiveGoroutines < tier.targetLive / 2) {
            std::printf("FAIL: %s peaked at %llu live goroutines "
                        "(target %llu)\n",
                        tier.name,
                        static_cast<unsigned long long>(
                            bare.res.peakLiveGoroutines),
                        static_cast<unsigned long long>(
                            tier.targetLive));
            all_clean = false;
        }
        report.add(std::string(tier.name) + "/bare",
                   bare.res.achievedRps, bare.res.wallSeconds, 1,
                   extrasFor(bare, bare));

        if (tier.raceConfig) {
            race::Detector race_detector;
            Measured raced =
                measure(tier, {&race_detector}, "race");
            all_clean &= raced.ok;
            report.add(std::string(tier.name) + "/race",
                       raced.res.achievedRps, raced.res.wallSeconds,
                       1, extrasFor(raced, bare));
        }
        if (tier.waitgraphConfig) {
            waitgraph::Detector wait_detector;
            Measured waited =
                measure(tier, {&wait_detector}, "waitgraph");
            all_clean &= waited.ok;
            report.add(std::string(tier.name) + "/waitgraph",
                       waited.res.achievedRps,
                       waited.res.wallSeconds, 1,
                       extrasFor(waited, bare));
        }
    }

    double detect_wall = 0;
    const bool detected = stuckConnDetected(&detect_wall);
    std::printf("stuck-conn detection under 2k-goroutine load: %s "
                "(%.2fs cpu)\n",
                detected ? "classified NetIoStuck" : "MISSED",
                detect_wall);
    all_clean &= detected;
    report.add("soak_detection/waitgraph_stuck_conn",
               detected ? 1.0 : 0.0, detect_wall, 1,
               {{"detected", detected ? 1.0 : 0.0}});

    if (const char *floor_env = std::getenv("GOLITE_SOAK_MIN_RPS")) {
        const double floor = std::atof(floor_env);
        if (min_bare_rps < floor) {
            std::printf("FAIL: bare throughput %.0f rps below floor "
                        "%.0f\n",
                        min_bare_rps, floor);
            all_clean = false;
        }
    }

    if (!report.writeFile("BENCH_soak.json"))
        return 1;
    if (!writeText("BENCH_soak_schema.json",
                   report.schemaFingerprint()))
        return 1;
    std::printf("wrote BENCH_soak.json (%zu entries) + "
                "BENCH_soak_schema.json\n",
                report.size());
    return all_clean ? 0 : 1;
}
