/**
 * @file
 * Table 2: goroutine/thread creation sites. Generates each app's
 * corpus, scans it with the lexer-based counter, and reports creation
 * sites split into anonymous vs named, normalized per KLOC, plus the
 * gRPC-C contrast (Section 3.1).
 */

#include <cstdio>

#include "bench_util.hh"
#include "scanner/counter.hh"
#include "scanner/generator.hh"
#include "study/tables.hh"

using golite::scanner::AppProfile;
using golite::scanner::countUsage;
using golite::scanner::generateSource;
using golite::scanner::goAppProfiles;
using golite::scanner::grpcCProfile;
using golite::scanner::UsageCounts;
using golite::study::TextTable;

int
main()
{
    golite::bench::banner(
        "Table 2 - Goroutine/thread creation sites (static)",
        "Tu et al., ASPLOS 2019, Table 2 + gRPC-C comparison");

    TextTable table({"Application", "Total", "Anonymous", "Named",
                     "Per KLOC", "Anon %"});
    for (AppProfile profile : goAppProfiles()) {
        // Aggregate three 100-KLOC samples per app so that the
        // creation-site statistics are out of the small-sample
        // noise regime.
        profile.sampleKloc = 100;
        UsageCounts counts;
        for (uint64_t seed = 1; seed <= 3; ++seed)
            counts += countUsage(generateSource(profile, seed));
        const double per_kloc = counts.perKloc(counts.goSites());
        const double anon_pct =
            counts.goSites() == 0
                ? 0.0
                : 100.0 * static_cast<double>(counts.goAnonymous) /
                      static_cast<double>(counts.goSites());
        table.addRow({profile.name, std::to_string(counts.goSites()),
                      std::to_string(counts.goAnonymous),
                      std::to_string(counts.goNamed),
                      TextTable::num(per_kloc),
                      TextTable::num(anon_pct, 1)});
    }

    const UsageCounts c_counts =
        countUsage(generateSource(grpcCProfile(), 1));
    table.addRow({"gRPC-C (threads)",
                  std::to_string(c_counts.threadCreation), "0",
                  std::to_string(c_counts.threadCreation),
                  TextTable::num(c_counts.perKloc(c_counts.threadCreation)),
                  "0.0"});

    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Shape check (paper): per-KLOC densities span ~0.18-0.83;\n"
        "all apps except Kubernetes and BoltDB favour anonymous\n"
        "functions; gRPC-C has only a handful of thread creation\n"
        "sites (~0.03/KLOC).\n");
    return 0;
}
