/**
 * @file
 * Table 8: evaluating the built-in deadlock detector on the 21
 * reproduced blocking bugs.
 *
 * Protocol follows Section 5.3: each bug is driven to its blocking
 * state (deterministically, via a manifesting seed) and run once; the
 * built-in detector "detects" the bug iff the runtime reports the
 * all-goroutines-asleep condition. The leak report — which Go's
 * detector does not have — is shown as the contrast column,
 * quantifying Implication 4's blind spot.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "parallel/protocol.hh"
#include "study/tables.hh"

using namespace golite;
using corpus::Behavior;
using corpus::BugCase;
using corpus::SubCause;
using corpus::Variant;

int
main()
{
    bench::banner(
        "Table 8 - Built-in deadlock detector evaluation",
        "Tu et al., ASPLOS 2019, Table 8");

    // Seed searches fan across workers (GOLITE_WORKERS overrides);
    // the wave search returns the same minimum manifesting seed a
    // serial scan would, so the table is worker-count independent.
    parallel::WorkerPool pool;
    std::printf("seed search workers: %u\n\n", pool.workers());

    struct Row
    {
        int used = 0;
        int detectedBuiltin = 0;
        int visibleAsLeak = 0;
    };
    std::map<SubCause, Row> rows;
    int total_used = 0, total_detected = 0, total_leak = 0;

    std::printf("%-18s %-9s %-10s %s\n", "bug", "cause",
                "built-in?", "leak report");
    std::printf("%s\n", std::string(70, '-').c_str());
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::Blocking, true)) {
        auto seed = parallel::findManifestingSeed(*bug, 200, pool);
        RunOptions options;
        options.seed = seed.value_or(0);
        auto outcome = bug->run(Variant::Buggy, options);

        Row &row = rows[bug->info.subcause];
        row.used++;
        total_used++;
        const bool builtin = outcome.report.globalDeadlock;
        const bool leak = !outcome.report.leaked.empty();
        row.detectedBuiltin += builtin;
        row.visibleAsLeak += leak || builtin;
        total_detected += builtin;
        total_leak += leak || builtin;
        std::printf("%-18s %-9s %-10s %zu goroutine(s) blocked\n",
                    bug->info.id.c_str(),
                    corpus::subCauseName(bug->info.subcause),
                    builtin ? "DETECTED" : "missed",
                    outcome.report.leaked.size());
    }

    std::printf("\n");
    study::TextTable table({"Root Cause", "# of Used Bugs",
                            "# Detected (built-in)",
                            "# Visible to leak report"});
    const SubCause order[] = {SubCause::Mutex, SubCause::Chan,
                              SubCause::ChanWithOther,
                              SubCause::MessagingLibrary};
    for (SubCause cause : order) {
        const Row &row = rows[cause];
        table.addRow({corpus::subCauseName(cause),
                      std::to_string(row.used),
                      std::to_string(row.detectedBuiltin),
                      std::to_string(row.visibleAsLeak)});
    }
    table.addRow({"Total", std::to_string(total_used),
                  std::to_string(total_detected),
                  std::to_string(total_leak)});
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Shape check (paper): the built-in detector catches only the\n"
        "two BoltDB bugs that stall *every* goroutine (one Mutex, one\n"
        "Chan w/), with no false positives; all partial blocking is\n"
        "invisible to it (Implication 4). The leak-report column is\n"
        "this library's extension: it sees every reproduced bug.\n");
    return 0;
}
