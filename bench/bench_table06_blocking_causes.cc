/**
 * @file
 * Table 6: blocking-bug root causes — the database aggregation plus
 * a live validation pass: every blocking kernel in the corpus is
 * executed and must actually block (global deadlock or goroutine
 * leak) under some schedule.
 */

#include <cstdio>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "study/tables.hh"

using namespace golite;
using corpus::Behavior;
using corpus::BugCase;
using corpus::Variant;

int
main()
{
    bench::banner("Table 6 - Blocking bug causes",
                  "Tu et al., ASPLOS 2019, Table 6");
    std::printf("%s\n", study::renderTable6().c_str());
    std::printf(
        "Shape check (paper, Observation 3): 42%% of blocking bugs\n"
        "come from shared-memory misuse, 58%% from message passing.\n\n");

    std::printf("Live validation: executing every blocking kernel\n");
    std::printf("%-18s %-9s %-34s %s\n", "bug", "cause", "buggy outcome",
                "fixed outcome");
    std::printf("%s\n", std::string(86, '-').c_str());
    for (const BugCase &bug : corpus::corpus()) {
        if (bug.info.behavior != Behavior::Blocking)
            continue;
        auto seed = bench::findManifestingSeed(bug);
        RunOptions options;
        options.seed = seed.value_or(0);
        auto buggy = bug.run(Variant::Buggy, options);
        auto fixed = bug.run(Variant::Fixed, options);
        std::printf("%-18s %-9s %-34s %s\n", bug.info.id.c_str(),
                    corpus::subCauseName(bug.info.subcause),
                    buggy.note.c_str(), fixed.note.c_str());
    }
    return 0;
}
