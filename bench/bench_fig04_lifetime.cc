/**
 * @file
 * Figure 4: bug life time CDFs (shared-memory vs message-passing
 * bugs) from the study database.
 */

#include <cstdio>

#include "bench_util.hh"
#include "study/tables.hh"

int
main()
{
    golite::bench::banner("Figure 4 - Bug life time CDF",
                          "Tu et al., ASPLOS 2019, Figure 4");
    std::printf("%s\n", golite::study::renderFigure4().c_str());
    std::printf(
        "Shape check (paper, Observation 2 context): most studied\n"
        "bugs (both cause classes) lived a long time - months to\n"
        "years - before being fixed; the two CDFs are similar.\n");
    return 0;
}
