/**
 * @file
 * Table 4: concurrency-primitive usage per application. Scans each
 * generated corpus and reports the measured share of every primitive
 * category, plus the gRPC-Go vs gRPC-C density contrast.
 */

#include <cstdio>

#include "bench_util.hh"
#include "scanner/counter.hh"
#include "scanner/generator.hh"
#include "study/tables.hh"

using golite::scanner::AppProfile;
using golite::scanner::countUsage;
using golite::scanner::generateSource;
using golite::scanner::goAppProfiles;
using golite::scanner::grpcCProfile;
using golite::scanner::UsageCounts;
using golite::study::TextTable;

namespace
{

std::string
pct(size_t count, size_t total)
{
    return total == 0 ? "0.00%"
                      : TextTable::num(100.0 * count / total) + "%";
}

} // namespace

int
main()
{
    golite::bench::banner(
        "Table 4 - Concurrency primitive usage (measured)",
        "Tu et al., ASPLOS 2019, Table 4");

    TextTable table({"Application", "Mutex", "atomic", "Once",
                     "WaitGroup", "Cond", "chan", "Misc.", "Total"});
    for (const AppProfile &profile : goAppProfiles()) {
        const UsageCounts counts =
            countUsage(generateSource(profile, 1));
        const size_t total = counts.totalPrimitives();
        table.addRow({profile.name, pct(counts.mutex, total),
                      pct(counts.atomicOps, total),
                      pct(counts.once, total),
                      pct(counts.waitGroup, total),
                      pct(counts.cond, total),
                      pct(counts.channel, total),
                      pct(counts.misc, total), std::to_string(total)});
    }
    std::printf("%s\n", table.render().c_str());

    const UsageCounts go_counts =
        countUsage(generateSource(goAppProfiles()[4], 1)); // gRPC-Go
    const UsageCounts c_counts =
        countUsage(generateSource(grpcCProfile(), 1));
    std::printf("gRPC-Go: %.1f primitive usages/KLOC across 7 "
                "categories\n",
                go_counts.perKloc(go_counts.totalPrimitives()));
    std::printf("gRPC-C : %.1f lock usages/KLOC (locks only)\n\n",
                c_counts.perKloc(c_counts.cLock));
    std::printf(
        "Shape check (paper): shared-memory primitives dominate in\n"
        "every app; Mutex is the most used primitive; chan leads the\n"
        "message-passing side (18-43%%); gRPC-Go uses ~3x more\n"
        "primitive types and a higher density than gRPC-C.\n");
    return 0;
}
