/**
 * @file
 * Table 3: dynamic goroutine statistics. Runs the three RPC
 * workloads against the Go-style (goroutine-per-request) server and
 * the C-style fixed-pool baseline on the golite scheduler, and
 * reports the goroutine:thread creation ratio plus normalized
 * execution times.
 */

#include <cstdio>

#include "bench_util.hh"
#include "rpcbench/rpc.hh"
#include "study/tables.hh"

using golite::rpcbench::DynamicStats;
using golite::rpcbench::runCStyleServer;
using golite::rpcbench::runGoStyleServer;
using golite::rpcbench::Workload;
using golite::rpcbench::workloads;
using golite::study::TextTable;

int
main()
{
    golite::bench::banner(
        "Table 3 - Dynamic goroutine/thread statistics",
        "Tu et al., ASPLOS 2019, Table 3");

    TextTable table({"Workload", "Goroutines", "Threads",
                     "Ratio (G/T)", "Goroutine life (norm.)",
                     "Thread life (norm.)"});
    for (const Workload &workload : workloads()) {
        const DynamicStats go_stats = runGoStyleServer(workload);
        const DynamicStats c_stats = runCStyleServer(workload);
        table.addRow(
            {workload.name, std::to_string(go_stats.unitsCreated),
             std::to_string(c_stats.unitsCreated),
             TextTable::num(static_cast<double>(go_stats.unitsCreated) /
                            static_cast<double>(c_stats.unitsCreated),
                            1),
             TextTable::num(100.0 * go_stats.normalizedLifetime, 1) +
                 "%",
             TextTable::num(100.0 * c_stats.normalizedLifetime, 1) +
                 "%"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Shape check (paper, Observation 1): goroutines are created\n"
        "far more often than C threads on every workload, and each\n"
        "lives a much smaller fraction of total runtime (the paper's\n"
        "gRPC-C threads live ~100%% of the run).\n");
    return 0;
}
