/**
 * @file
 * Table 12: evaluating the happens-before race detector on the 20
 * reproduced non-blocking bugs.
 *
 * Protocol follows Section 6.3: each buggy program runs 100 times
 * (100 seeds) with the detector enabled; a bug counts as detected if
 * any run reports a race. The per-category hit pattern is the
 * paper's point: plain data races are caught, while atomicity/order
 * violations, WaitGroup misuse, double close, and library timing
 * bugs are structurally invisible to a race detector.
 *
 * Besides the human-readable table, the bench writes the detection
 * counts to BENCH_table12.json; CI diffs that file against the
 * checked-in baselines/BENCH_table12_expected.json so any detector
 * change that drifts a count fails the bench smoke job.
 */

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "parallel/protocol.hh"
#include "race/detector.hh"
#include "study/tables.hh"

using namespace golite;
using corpus::Behavior;
using corpus::BugCase;
using corpus::SubCause;
using corpus::Variant;

int
main()
{
    bench::banner("Table 12 - Data race detector evaluation",
                  "Tu et al., ASPLOS 2019, Table 12");

    constexpr int kRuns = 100;

    // The 100-seed protocol fans across workers (GOLITE_WORKERS
    // overrides); each worker thread reuses one reset() detector for
    // every seed it probes, so concurrent runs share nothing and the
    // sweep loop constructs no detectors, and the wave search
    // reports the same first detecting seed as the serial 0..99 scan.
    parallel::WorkerPool pool;
    std::printf("protocol workers: %u\n\n", pool.workers());

    struct Row
    {
        int used = 0;
        int detected = 0;
    };
    std::map<SubCause, Row> rows;
    int total_used = 0, total_detected = 0;

    std::printf("%-18s %-20s %-10s %s\n", "bug", "cause", "detected?",
                "first detecting run");
    std::printf("%s\n", std::string(72, '-').c_str());
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::NonBlocking, true)) {
        const auto first =
            parallel::findFirstRaceSeed(*bug, kRuns, pool);
        const int first_hit =
            first ? static_cast<int>(*first) : -1;
        Row &row = rows[bug->info.subcause];
        row.used++;
        total_used++;
        row.detected += first_hit >= 0;
        total_detected += first_hit >= 0;
        const std::string hit_note =
            first_hit >= 0 ? "run " + std::to_string(first_hit + 1)
                           : "-";
        std::printf("%-18s %-20s %-10s %s\n", bug->info.id.c_str(),
                    corpus::subCauseName(bug->info.subcause),
                    first_hit >= 0 ? "DETECTED" : "missed",
                    hit_note.c_str());
    }

    std::printf("\n");
    study::TextTable table(
        {"Root Cause", "# of Used Bugs", "# of Detected Bugs"});
    const SubCause order[] = {
        SubCause::Traditional, SubCause::AnonymousFunction,
        SubCause::WaitGroupMisuse, SubCause::ChanMisuse,
        SubCause::LibMessage};
    for (SubCause cause : order) {
        const Row &row = rows[cause];
        table.addRow({corpus::subCauseName(cause),
                      std::to_string(row.used),
                      std::to_string(row.detected)});
    }
    table.addRow({"Total", std::to_string(total_used),
                  std::to_string(total_detected)});
    std::printf("%s\n", table.render().c_str());

    // Machine-readable counts for the CI drift gate.
    std::string json = "{\n  \"rows\": [\n";
    for (SubCause cause : order) {
        const Row &row = rows[cause];
        json += std::string("    {\"cause\": \"") +
                corpus::subCauseName(cause) +
                "\", \"used\": " + std::to_string(row.used) +
                ", \"detected\": " + std::to_string(row.detected) +
                "},\n";
    }
    json += "    {\"cause\": \"total\", \"used\": " +
            std::to_string(total_used) +
            ", \"detected\": " + std::to_string(total_detected) +
            "}\n  ]\n}\n";
    if (std::FILE *f = std::fopen("BENCH_table12.json", "w")) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote BENCH_table12.json\n");
    }
    std::printf(
        "Shape check (paper): 7/13 traditional and 3/4 anonymous-\n"
        "function bugs are detected (10/20 overall); WaitGroup\n"
        "misuse, channel misuse (double close -> panic, not a race)\n"
        "and library timing bugs are missed - they are not data\n"
        "races (Implication 8). No false positives.\n");
    return 0;
}
