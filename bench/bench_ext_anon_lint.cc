/**
 * @file
 * Extension experiment: the Section 7 anonymous-capture detector at
 * corpus scale.
 *
 * "As a preliminary effort, we built a detector targeting the
 * non-blocking bugs caused by anonymous functions ... Our detector
 * has already discovered a few new bugs." This bench reruns that
 * experiment end-to-end: per-app corpora are generated with a known
 * number of injected Figure-8 capture bugs (plus correctly
 * privatized decoys), the lint scans them, and precision/recall are
 * reported against the ground truth.
 */

#include <cstdio>

#include "bench_util.hh"
#include "scanner/generator.hh"
#include "scanner/lint.hh"
#include "study/tables.hh"

using namespace golite;
using scanner::AppProfile;
using scanner::generateWithCaptureBugs;
using scanner::goAppProfiles;
using scanner::lintAnonymousCaptures;

int
main()
{
    bench::banner(
        "Extension - anonymous-capture lint (Section 7 detector)",
        "the paper's preliminary Figure-8 detector, reproduced");

    study::TextTable table({"Application", "injected bugs",
                            "privatized decoys", "lint findings",
                            "precision", "recall"});
    int total_injected = 0, total_found = 0, total_false = 0;
    uint64_t seed = 100;
    for (const AppProfile &base : goAppProfiles()) {
        AppProfile profile = base;
        profile.sampleKloc = 20;
        const int buggy = 3 + static_cast<int>(seed % 5);
        const int decoys = buggy + 4;
        auto findings = lintAnonymousCaptures(
            generateWithCaptureBugs(profile, seed, buggy, decoys));
        // Every injected bug captures `idx`; anything else would be
        // a false positive.
        int hits = 0, false_positives = 0;
        for (const auto &f : findings)
            (f.variable == "idx" ? hits : false_positives)++;
        total_injected += buggy;
        total_found += hits;
        total_false += false_positives;
        table.addRow(
            {profile.name, std::to_string(buggy),
             std::to_string(decoys), std::to_string(findings.size()),
             hits + false_positives == 0
                 ? "-"
                 : study::TextTable::num(
                       100.0 * hits / (hits + false_positives), 1) +
                       "%",
             study::TextTable::num(100.0 * hits / buggy, 1) + "%"});
        seed += 17;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("totals: %d/%d injected bugs found, %d false "
                "positives\n\n",
                total_found, total_injected, total_false);
    std::printf(
        "Shape check (paper, Section 7): a pattern detector for the\n"
        "anonymous-function class finds real capture bugs with no\n"
        "false positives on privatized code - the basis for the\n"
        "paper's claim that its catalogued patterns can drive new\n"
        "detectors.\n");
    return 0;
}
