/**
 * @file
 * Extension: Table 8 rerun with the wait-for-graph partial-deadlock
 * detector attached.
 *
 * The paper's Table 8 result is that Go's built-in detector — which
 * fires only when *every* goroutine is asleep — catches 2 of the 21
 * reproduced blocking bugs. This bench evaluates the detector the
 * paper's Implication 4 asks for: each bug is driven to its blocking
 * state under a manifesting seed with a waitgraph::Detector plugged
 * onto the run's event bus, and we record
 *
 *   - built-in:  did the all-asleep detector fire (paper baseline),
 *   - certain:   did the wait graph prove a partial deadlock mid-run
 *                (lock cycle / orphaned lock / nil-chan / dead select),
 *   - flagged:   was the bug surfaced at all, counting the end-of-run
 *                orphan classification of leaked goroutines.
 *
 * A detector is only useful if it is quiet on correct code, so the
 * second half runs every fixed corpus variant over many seeds plus
 * clean example-shaped programs and demands zero mid-run reports.
 * Exit status is non-zero if the detector flags < 15/21 bugs or emits
 * any false positive.
 */

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include <numeric>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "golite/golite.hh"
#include "parallel/protocol.hh"
#include "study/tables.hh"

using namespace golite;
using corpus::Behavior;
using corpus::BugCase;
using corpus::SubCause;
using corpus::Variant;

namespace
{

struct Eval
{
    bool builtin = false;
    bool certain = false;
    bool flagged = false;
    std::string detail;
};

Eval
evaluate(const BugCase &bug, golite::parallel::WorkerPool &pool)
{
    Eval ev;
    auto seed = parallel::findManifestingSeed(bug, 200, pool);
    waitgraph::Detector det;
    RunOptions options;
    options.seed = seed.value_or(0);
    options.subscribers.push_back(&det);
    auto outcome = bug.run(Variant::Buggy, options);
    ev.builtin = outcome.report.globalDeadlock;
    ev.certain = !det.certainReports().empty();
    ev.flagged = outcome.report.partialDeadlockFlagged();
    if (!outcome.report.partialDeadlocks.empty()) {
        const PartialDeadlock &pd = outcome.report.partialDeadlocks[0];
        ev.detail = std::string(deadlockCauseName(pd.cause));
    }
    return ev;
}

/** Count certain mid-run reports across seeds of a fixed variant.
 *  Seeds fan across the pool; each run owns a fresh detector, and the
 *  sum is order-independent. */
int
falsePositives(const BugCase &bug, int seeds,
               golite::parallel::WorkerPool &pool)
{
    const auto counts = parallel::parallelMap(
        pool, static_cast<size_t>(seeds), [&bug](size_t seed) {
            waitgraph::Detector det;
            RunOptions options;
            options.seed = static_cast<uint64_t>(seed);
            options.subscribers.push_back(&det);
            bug.run(Variant::Fixed, options);
            return static_cast<int>(det.certainReports().size());
        });
    return std::accumulate(counts.begin(), counts.end(), 0);
}

/** Clean example-shaped programs: contended locks, channel fan-out,
 *  writer-priority RWMutex traffic — all with reachable wakeups. */
int
cleanProgramFalsePositives(int seeds,
                           golite::parallel::WorkerPool &pool)
{
    const auto counts = parallel::parallelMap(
        pool, static_cast<size_t>(seeds), [](size_t seed) {
        int fps = 0;
        waitgraph::Detector det;
        RunOptions options;
        options.seed = static_cast<uint64_t>(seed);
        options.subscribers.push_back(&det);
        RunReport report = run(
            [] {
                auto mu = std::make_shared<Mutex>();
                auto rw = std::make_shared<RWMutex>();
                auto wg = std::make_shared<WaitGroup>();
                Chan<int> work = makeChan<int>(4);
                Chan<int> done = makeChan<int>();
                wg->add(4);
                for (int w = 0; w < 4; ++w) {
                    go([=] {
                        for (;;) {
                            auto r = work.recv();
                            if (!r.ok)
                                break;
                            mu->lock();
                            yield();
                            mu->unlock();
                            rw->rlock();
                            yield();
                            rw->runlock();
                        }
                        wg->done();
                    });
                }
                go([=]() mutable {
                    for (int i = 0; i < 16; ++i)
                        work.send(i);
                    work.close();
                    wg->wait();
                    done.send(1);
                });
                rw->lock();
                yield();
                rw->unlock();
                done.recv();
            },
            options);
        fps += static_cast<int>(det.certainReports().size());
        if (!report.clean())
            fps++; // a clean program must stay clean under the detector
        return fps;
        });
    return std::accumulate(counts.begin(), counts.end(), 0);
}

} // namespace

int
main()
{
    bench::banner(
        "Extension - wait-for-graph partial-deadlock detector",
        "Tu et al., ASPLOS 2019, Table 8 + Implication 4");

    // Seed searches and the false-positive audit fan across workers
    // (GOLITE_WORKERS overrides); every count below is identical to
    // the serial protocol for any worker count.
    parallel::WorkerPool pool;
    std::printf("protocol workers: %u\n\n", pool.workers());

    struct Row
    {
        int used = 0;
        int builtin = 0;
        int certain = 0;
        int flagged = 0;
    };
    std::map<SubCause, Row> rows;
    int total_used = 0, total_builtin = 0, total_certain = 0,
        total_flagged = 0;

    std::printf("%-18s %-9s %-9s %-9s %-8s %s\n", "bug", "cause",
                "built-in", "certain", "flagged", "diagnosis");
    std::printf("%s\n", std::string(78, '-').c_str());
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::Blocking, true)) {
        Eval ev = evaluate(*bug, pool);
        Row &row = rows[bug->info.subcause];
        row.used++;
        row.builtin += ev.builtin;
        row.certain += ev.certain;
        row.flagged += ev.flagged;
        total_used++;
        total_builtin += ev.builtin;
        total_certain += ev.certain;
        total_flagged += ev.flagged;
        std::printf("%-18s %-9s %-9s %-9s %-8s %s\n",
                    bug->info.id.c_str(),
                    corpus::subCauseName(bug->info.subcause),
                    ev.builtin ? "DETECTED" : "missed",
                    ev.certain ? "CERTAIN" : "-",
                    ev.flagged ? "flagged" : "MISSED",
                    ev.detail.c_str());
    }

    std::printf("\n");
    study::TextTable table({"Root Cause", "# of Used Bugs",
                            "# Built-in", "# Certain mid-run",
                            "# Flagged (wait graph)"});
    const SubCause order[] = {SubCause::Mutex, SubCause::Chan,
                              SubCause::ChanWithOther,
                              SubCause::MessagingLibrary};
    for (SubCause cause : order) {
        const Row &row = rows[cause];
        table.addRow({corpus::subCauseName(cause),
                      std::to_string(row.used),
                      std::to_string(row.builtin),
                      std::to_string(row.certain),
                      std::to_string(row.flagged)});
    }
    table.addRow({"Total", std::to_string(total_used),
                  std::to_string(total_builtin),
                  std::to_string(total_certain),
                  std::to_string(total_flagged)});
    std::printf("%s\n", table.render().c_str());

    // Bonus rows: blocking bugs outside the paper's reproduced set
    // (RWMutex / Wait subcauses, Table 5 taxonomy only).
    std::printf("outside the reproduced set:\n");
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::Blocking, false)) {
        if (bug->info.reproducedSet)
            continue;
        Eval ev = evaluate(*bug, pool);
        std::printf("  %-18s %-9s %-9s %-9s %-8s %s\n",
                    bug->info.id.c_str(),
                    corpus::subCauseName(bug->info.subcause),
                    ev.builtin ? "DETECTED" : "missed",
                    ev.certain ? "CERTAIN" : "-",
                    ev.flagged ? "flagged" : "MISSED",
                    ev.detail.c_str());
    }

    // False-positive audit: fixed variants + clean programs must
    // produce zero certain mid-run reports.
    int fps = 0;
    int fixed_runs = 0;
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::Blocking, false)) {
        fps += falsePositives(*bug, 10, pool);
        fixed_runs += 10;
    }
    int clean_fps = cleanProgramFalsePositives(10, pool);
    std::printf("\nfalse-positive audit: %d fixed-variant runs + 10 "
                "clean-program runs, %d mid-run report(s)\n",
                fixed_runs, fps + clean_fps);

    std::printf(
        "\nShape check (paper + extension): the built-in detector\n"
        "stays at 2/21 (the two BoltDB full stalls). The wait graph\n"
        "proves a certain partial deadlock mid-run for the lock-cycle,\n"
        "orphaned-lock and nil-channel bugs, and its end-of-run orphan\n"
        "analysis classifies every remaining leak, flagging all 21 —\n"
        "with zero reports on correct code.\n");

    const bool ok = total_builtin == 2 && total_flagged >= 15 &&
                    fps + clean_fps == 0;
    if (!ok)
        std::printf("FAILED: builtin=%d (want 2) flagged=%d (want "
                    ">=15) false positives=%d (want 0)\n",
                    total_builtin, total_flagged, fps + clean_fps);
    return ok ? 0 : 1;
}
