/**
 * @file
 * Substrate microbenchmarks (google-benchmark): cost of goroutine
 * spawn/switch, channel operations, select, sync primitives, and the
 * race-detector instrumentation overhead. Not a paper table — this
 * quantifies the simulator the reproduction runs on, and the
 * detector-overhead ratio mirrors the practical cost argument the
 * paper makes for the built-in detectors (Section 5.3: "minimal
 * runtime overhead").
 */

#include <benchmark/benchmark.h>

#include "bench_json.hh"
#include "golite/golite.hh"

namespace
{

using namespace golite;

void
BM_GoroutineSpawnJoin(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        RunReport report = run([n] {
            WaitGroup wg;
            wg.add(n);
            for (int i = 0; i < n; ++i) {
                go([&wg] { wg.done(); });
            }
            wg.wait();
        });
        benchmark::DoNotOptimize(report.goroutinesCreated);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GoroutineSpawnJoin)->Arg(10)->Arg(100)->Arg(1000);

void
BM_UnbufferedChannelPingPong(benchmark::State &state)
{
    const int rounds = static_cast<int>(state.range(0));
    for (auto _ : state) {
        run([rounds] {
            Chan<int> ping = makeChan<int>();
            Chan<int> pong = makeChan<int>();
            go([=] {
                for (int i = 0; i < rounds; ++i)
                    pong.send(ping.recv().value + 1);
            });
            for (int i = 0; i < rounds; ++i) {
                ping.send(i);
                pong.recv();
            }
        });
    }
    state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_UnbufferedChannelPingPong)->Arg(64)->Arg(512);

void
BM_BufferedChannelThroughput(benchmark::State &state)
{
    const int items = static_cast<int>(state.range(0));
    for (auto _ : state) {
        run([items] {
            Chan<int> ch = makeChan<int>(16);
            go([=] {
                for (int i = 0; i < items; ++i)
                    ch.send(i);
                ch.close();
            });
            while (ch.recv().ok) {
            }
        });
    }
    state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_BufferedChannelThroughput)->Arg(1000);

void
BM_SelectTwoReady(benchmark::State &state)
{
    for (auto _ : state) {
        run([] {
            Chan<int> a = makeChan<int>(1);
            Chan<int> b = makeChan<int>(1);
            for (int i = 0; i < 200; ++i) {
                a.trySend(1);
                b.trySend(2);
                Select()
                    .recv<int>(a, [](int, bool) {})
                    .recv<int>(b, [](int, bool) {})
                    .run();
            }
        });
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_SelectTwoReady);

void
BM_MutexContention(benchmark::State &state)
{
    const int goroutines = static_cast<int>(state.range(0));
    for (auto _ : state) {
        run([goroutines] {
            Mutex mu;
            WaitGroup wg;
            wg.add(goroutines);
            for (int g = 0; g < goroutines; ++g) {
                go([&] {
                    for (int i = 0; i < 50; ++i) {
                        mu.lock();
                        yield();
                        mu.unlock();
                    }
                    wg.done();
                });
            }
            wg.wait();
        });
    }
    state.SetItemsProcessed(state.iterations() * goroutines * 50);
}
BENCHMARK(BM_MutexContention)->Arg(2)->Arg(8);

RunReport
raceWorkload(RunOptions options)
{
    options.preemptProb = 0.1;
    race::Shared<int> x("bench");
    return run([&x] {
        Mutex mu;
        WaitGroup wg;
        wg.add(4);
        for (int g = 0; g < 4; ++g) {
            go([&] {
                for (int i = 0; i < 100; ++i) {
                    mu.lock();
                    x.update([](int &v) { v++; });
                    mu.unlock();
                }
                wg.done();
            });
        }
        wg.wait();
    }, options);
}

RunReport
raceWorkload(golite::Subscriber *detector)
{
    RunOptions options;
    if (detector)
        options.subscribers.push_back(detector);
    return raceWorkload(options);
}

void
BM_RaceDetectorOff(benchmark::State &state)
{
    for (auto _ : state)
        raceWorkload(nullptr);
    state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_RaceDetectorOff);

void
BM_RaceDetectorOn(benchmark::State &state)
{
    for (auto _ : state) {
        race::Detector detector;
        raceWorkload(&detector);
    }
    state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_RaceDetectorOn);

void
BM_TimerWheel(benchmark::State &state)
{
    const int timers = static_cast<int>(state.range(0));
    for (auto _ : state) {
        run([timers] {
            WaitGroup wg;
            wg.add(timers);
            for (int i = 0; i < timers; ++i) {
                go([&wg, i] {
                    gotime::sleep((i % 17 + 1) * gotime::kMillisecond);
                    wg.done();
                });
            }
            wg.wait();
        });
    }
    state.SetItemsProcessed(state.iterations() * timers);
}
BENCHMARK(BM_TimerWheel)->Arg(100);

/**
 * Console output as usual, plus every finished run collected into
 * BENCH_perf.json (items/sec from the SetItemsProcessed counter,
 * wall time as mean real seconds per iteration).
 */
class JsonTeeReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            double items = 0.0;
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                items = it->second;
            const double iters =
                run.iterations > 0
                    ? static_cast<double>(run.iterations)
                    : 1.0;
            report.add(run.benchmark_name(), items,
                       run.real_accumulated_time / iters,
                       /*workers=*/1);
        }
    }

    golite::bench::JsonReport report;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    JsonTeeReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    // One instrumented pass over the race workload at a fixed seed:
    // its operation mix rides along in BENCH_perf.json so a
    // throughput shift can be read against what the runs actually did.
    obs::MetricsSink metrics;
    RunOptions options;
    options.seed = 1;
    options.subscribers.push_back(&metrics);
    reporter.report.setRunMetrics(
        raceWorkload(options).metrics.json());

    reporter.report.writeFile("BENCH_perf.json");
    std::printf("wrote BENCH_perf.json (%zu entries)\n",
                reporter.report.size());
    return 0;
}
