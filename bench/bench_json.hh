/**
 * @file
 * Minimal JSON emitter for machine-readable bench results.
 *
 * The table benches print paper artefacts for humans; the perf
 * benches additionally drop a BENCH_*.json next to the binary so CI
 * and scripts can track throughput without scraping console output.
 * One record per measurement: name, items/second, wall seconds, and
 * the worker count that produced it.
 */

#ifndef GOLITE_BENCH_BENCH_JSON_HH
#define GOLITE_BENCH_BENCH_JSON_HH

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace golite::bench
{

/** One measured bench entry. */
struct JsonEntry
{
    std::string name;
    double itemsPerSecond = 0.0;
    double wallSeconds = 0.0;
    unsigned workers = 1;
    /** Additional numeric keys (latency quantiles, goroutine counts,
     *  overhead ratios), emitted after the fixed keys in insertion
     *  order. */
    std::vector<std::pair<std::string, double>> extras;
};

class JsonReport
{
  public:
    void
    add(std::string name, double items_per_second,
        double wall_seconds, unsigned workers = 1,
        std::vector<std::pair<std::string, double>> extras = {})
    {
        entries_.push_back({std::move(name), items_per_second,
                            wall_seconds, workers,
                            std::move(extras)});
    }

    /**
     * Attach one obs::MetricsSink counter document (the single-line
     * RunMetrics::json() output) rendered as a "run_metrics"
     * top-level key, so throughput numbers travel with the exact
     * operation mix that produced them.
     */
    void
    setRunMetrics(std::string metrics_json)
    {
        runMetrics_ = std::move(metrics_json);
    }

    /** Render the whole report as a JSON document. */
    std::string
    render() const
    {
        std::string out = "{\n  \"benchmarks\": [\n";
        for (size_t i = 0; i < entries_.size(); ++i) {
            const JsonEntry &e = entries_[i];
            char buf[160];
            std::snprintf(buf, sizeof buf,
                          "      \"items_per_second\": %.3f,\n"
                          "      \"wall_seconds\": %.6f,\n"
                          "      \"workers\": %u",
                          e.itemsPerSecond, e.wallSeconds, e.workers);
            out += "    {\n      \"name\": \"" + escape(e.name) +
                   "\",\n" + buf;
            for (const auto &[key, value] : e.extras) {
                char ebuf[96];
                std::snprintf(ebuf, sizeof ebuf, "%.3f", value);
                out += ",\n      \"" + escape(key) + "\": " + ebuf;
            }
            out += "\n    }";
            out += (i + 1 < entries_.size()) ? ",\n" : "\n";
        }
        out += "  ]";
        if (!runMetrics_.empty())
            out += ",\n  \"run_metrics\": " + runMetrics_;
        out += "\n}\n";
        return out;
    }

    /** Write the report to @p path; false (with perror) on failure. */
    bool
    writeFile(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::perror(("bench_json: " + path).c_str());
            return false;
        }
        const std::string doc = render();
        const bool ok =
            std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
        std::fclose(f);
        return ok;
    }

    size_t size() const { return entries_.size(); }

    /** Write schemaFingerprint() to @p path (the committed-baseline
     *  side of the CI schema byte-diff); false on failure. */
    bool
    writeSchemaFile(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::perror(("bench_json: " + path).c_str());
            return false;
        }
        const std::string doc = schemaFingerprint();
        const bool ok =
            std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
        std::fclose(f);
        return ok;
    }

    /**
     * Structural fingerprint of the report: entry names and their
     * (sorted) key sets, no values. Byte-stable as long as the bench
     * emits the same entries with the same fields, so CI can diff it
     * against a committed schema file and catch silent shape drift
     * without pinning machine-dependent numbers.
     */
    std::string
    schemaFingerprint() const
    {
        std::string out = "{\n  \"schema\": [\n";
        for (size_t i = 0; i < entries_.size(); ++i) {
            const JsonEntry &e = entries_[i];
            std::vector<std::string> keys = {"items_per_second",
                                             "name", "wall_seconds",
                                             "workers"};
            for (const auto &[key, value] : e.extras) {
                (void)value;
                keys.push_back(key);
            }
            std::sort(keys.begin(), keys.end());
            out += "    {\"name\": \"" + escape(e.name) +
                   "\", \"keys\": [";
            for (size_t k = 0; k < keys.size(); ++k) {
                out += "\"" + escape(keys[k]) + "\"";
                if (k + 1 < keys.size())
                    out += ", ";
            }
            out += "]}";
            out += (i + 1 < entries_.size()) ? ",\n" : "\n";
        }
        out += "  ],\n  \"run_metrics\": ";
        out += runMetrics_.empty() ? "false" : "true";
        out += "\n}\n";
        return out;
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
                continue;
            }
            out += c;
        }
        return out;
    }

    std::vector<JsonEntry> entries_;
    std::string runMetrics_; ///< pre-rendered RunMetrics::json()
};

} // namespace golite::bench

#endif // GOLITE_BENCH_BENCH_JSON_HH
