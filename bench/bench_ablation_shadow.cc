/**
 * @file
 * Ablation: shadow-history depth vs race-detection recall.
 *
 * Section 6.3 names the bounded shadow history ("up to four shadow
 * words per memory object") as one reason Go's race detector misses
 * bugs. This ablation sweeps the history depth over the racy
 * non-blocking kernels plus a synthetic eviction-stress workload and
 * reports detection rates per depth. The sweep now extends past the
 * former 8-cell cap (the detector draws deep histories from its cell
 * slab), so the >8 rows show the stress pattern saturating exactly
 * when the history outlives the eviction distance.
 */

#include <cstdio>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "golite/golite.hh"
#include "parallel/protocol.hh"
#include "study/tables.hh"

using namespace golite;
using corpus::Behavior;
using corpus::BugCase;
using corpus::Variant;

namespace
{

// Eviction stress: a writer's single racy write is followed by many
// same-goroutine reads that push it out of a shallow history before
// the racing reader arrives.
bool
evictionStressDetected(size_t depth, int reads_between)
{
    race::Detector detector(depth);
    RunOptions options;
    options.subscribers.push_back(&detector);
    options.policy = SchedPolicy::Fifo;
    options.preemptProb = 0.0;
    race::Shared<int> x("stress");
    run([&] {
        go([&] {
            x.store(1);
            for (int i = 0; i < reads_between; ++i)
                (void)x.load();
        });
        go([&] { (void)x.load(); });
        yield();
        yield();
    }, options);
    return detector.racedOn("stress");
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation - shadow history depth vs detection recall",
        "Section 6.3's bounded-history miss mode, quantified");

    const size_t depths[] = {1, 2, 4, 8, 16};
    constexpr int kSeeds = 100;
    constexpr int kStressReads = 12;

    parallel::WorkerPool pool;
    study::TextTable table({"shadow depth", "corpus bugs detected",
                            "eviction stress (0..12 reads)"});
    for (size_t depth : depths) {
        int detected = 0, used = 0;
        for (const BugCase *bug :
             corpus::bugsByBehavior(Behavior::NonBlocking, true)) {
            used++;
            if (parallel::findFirstRaceSeed(*bug, kSeeds, pool, depth))
                detected++;
        }
        std::string stress;
        for (int reads = 0; reads <= kStressReads; ++reads)
            stress += evictionStressDetected(depth, reads) ? 'Y' : '.';
        table.addRow({std::to_string(depth),
                      std::to_string(detected) + "/" +
                          std::to_string(used),
                      stress});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Expected shape: corpus detection saturates at 10/20 (the\n"
        "misses are not data races at any depth), while the eviction\n"
        "stress column shows shallow histories losing the racy write\n"
        "after depth-1 subsequent accesses - Go's 4-word history\n"
        "misses exactly the >=4-access patterns, and only the >8-cell\n"
        "histories (now slab-backed, no longer capped at 8) keep the\n"
        "write across the longest eviction runs.\n");
    return 0;
}
