/**
 * @file
 * Figures 2 and 3: shared-memory and message-passing primitive
 * proportions over time (Feb 2015 - May 2018). Generates a monthly
 * snapshot corpus per app, scans it, and prints both series; the
 * expected shape is near-constant lines.
 */

#include <cstdio>

#include "bench_util.hh"
#include "scanner/counter.hh"
#include "scanner/generator.hh"
#include "study/tables.hh"

using golite::scanner::AppProfile;
using golite::scanner::countUsage;
using golite::scanner::generateSource;
using golite::scanner::goAppProfiles;
using golite::scanner::monthLabel;
using golite::scanner::snapshotProfile;
using golite::scanner::UsageCounts;
using golite::study::TextTable;

int
main()
{
    golite::bench::banner(
        "Figures 2 & 3 - Primitive usage proportions over time",
        "Tu et al., ASPLOS 2019, Figures 2 and 3");

    // Sample every third month to keep runtime friendly; the series
    // shape (flat lines) is unaffected.
    std::vector<int> months;
    for (int m = 0; m < 40; m += 3)
        months.push_back(m);

    for (int figure = 2; figure <= 3; ++figure) {
        const bool shared = figure == 2;
        std::printf("Figure %d: proportion of %s primitives\n", figure,
                    shared ? "shared-memory" : "message-passing");
        std::vector<std::string> header = {"Application"};
        for (int m : months)
            header.push_back(monthLabel(m));
        TextTable table(header);
        for (const AppProfile &base : goAppProfiles()) {
            std::vector<std::string> row = {base.name};
            for (int m : months) {
                AppProfile snap = snapshotProfile(base, m);
                // 30 KLOC per snapshot balances runtime vs sampling noise.
                snap.sampleKloc = 30;
                const UsageCounts counts = countUsage(
                    generateSource(snap, 1000 + static_cast<uint64_t>(m)));
                const double total =
                    static_cast<double>(counts.totalPrimitives());
                const double share =
                    total == 0
                        ? 0
                        : (shared ? counts.sharedMemoryPrimitives()
                                  : counts.messagePassingPrimitives()) /
                              total;
                row.push_back(TextTable::num(share));
            }
            table.addRow(row);
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf(
        "Shape check (paper): both proportions are stable across the\n"
        "whole 2015-2018 window for every application.\n");
    return 0;
}
