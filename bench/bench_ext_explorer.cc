/**
 * @file
 * Extension experiment: systematic schedule exploration vs the
 * paper's repeated-run reproduction protocol.
 *
 * Section 4: "Due to their non-deterministic nature, concurrency
 * bugs are difficult to reproduce. Sometimes, we needed to run a
 * buggy program a lot of times or manually add sleep..." The
 * explorer replaces hope with enumeration: for each kernel it walks
 * the schedule tree (bounded at 20k schedules), reports the exact
 * fraction of schedules that manifest the bug, and — for the fixed
 * variants — *verifies* cleanliness over every enumerated schedule.
 */

#include <cstdio>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "explore/explorer.hh"
#include "parallel/pexplore.hh"
#include "study/tables.hh"

using namespace golite;
using corpus::BugCase;
using corpus::Variant;
using explore::ExploreResult;

namespace
{

ExploreResult
exploreKernel(const BugCase &bug, Variant variant, size_t budget)
{
    // Subtree fan-out across workers (GOLITE_WORKERS overrides the
    // default); exhaustive enumerations are identical to the serial
    // explorer for every worker count, bounded ones deterministic
    // for a fixed worker count.
    parallel::ParallelExploreOptions options;
    options.explore.maxSchedules = budget;
    return parallel::exploreAllParallel(
        [&bug, variant](const RunOptions &run_options) {
            return bug.run(variant, run_options).report;
        },
        options);
}

std::string
pct(size_t part, size_t whole)
{
    if (whole == 0)
        return "-";
    return golite::study::TextTable::num(100.0 * part / whole, 1) + "%";
}

} // namespace

int
main()
{
    bench::banner(
        "Extension - systematic schedule exploration",
        "replaces Section 4's repeated-run protocol with enumeration");
    std::printf("exploration workers: %u\n\n",
                parallel::defaultWorkers());

    const char *kernels[] = {
        // Small spaces (exhaustive): the detector-visible deadlocks,
        // self-deadlocks, and channel leaks.
        "boltdb-392", "boltdb-240", "moby-17176", "grpc-795",
        "kubernetes-70447", "grpc-1275", "etcd-6632", "docker-5416",
        "kubernetes-5316",
        // Larger spaces (bounded at the budget).
        "etcd-10492", "etcd-6857", "docker-21233",
    };
    constexpr size_t kBudget = 20000;

    study::TextTable table({"bug", "schedules", "exhaustive?",
                            "buggy: bad schedules",
                            "fixed: bad schedules"});
    for (const char *id : kernels) {
        const BugCase *bug = corpus::findBug(id);
        ExploreResult buggy = exploreKernel(*bug, Variant::Buggy,
                                            kBudget);
        ExploreResult fixed = exploreKernel(*bug, Variant::Fixed,
                                            kBudget);
        const size_t buggy_bad = buggy.schedules - buggy.clean;
        const size_t fixed_bad = fixed.schedules - fixed.clean;
        table.addRow({id, std::to_string(buggy.schedules),
                      buggy.exhaustive && fixed.exhaustive ? "yes"
                                                           : "bounded",
                      pct(buggy_bad, buggy.schedules),
                      pct(fixed_bad, fixed.schedules)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Reading: a 100.0%% buggy column is a proof (within the\n"
        "explored space) that the bug is schedule-independent; a\n"
        "fractional value is the exact manifestation rate that the\n"
        "paper's ~100-run protocol could only sample. A 0.0%% fixed\n"
        "column over an exhaustive space *verifies* the patch: no\n"
        "schedule of the fixed program blocks, panics, or leaks.\n");
    return 0;
}
