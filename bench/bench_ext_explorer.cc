/**
 * @file
 * Extension experiment: DPOR vs naive enumeration vs coverage-guided
 * fuzzing — executions to first bug across the whole corpus, plus
 * bounded-exhaustiveness certificates for fixed kernels.
 *
 * Section 4: "Due to their non-deterministic nature, concurrency
 * bugs are difficult to reproduce. Sometimes, we needed to run a
 * buggy program a lot of times or manually add sleep..." The
 * explorer replaces hope with enumeration; dynamic partial-order
 * reduction replaces enumeration with *pruned* enumeration: runs
 * that only commute independent steps of an already-explored run are
 * skipped, so the same budget reaches bugs that naive DFS never
 * gets to. All three searchers use the identical bug predicate (race
 * detector attached, kernel manifestation folded into the report).
 *
 * Everything is deterministic (serial walkers, fixed fuzz seed), so
 * BENCH_explore.json is byte-stable and CI diffs it against
 * baselines/BENCH_explore.json. The bench exits non-zero unless:
 *
 *   1. on every kernel where naive finds the bug, DPOR finds it at
 *      least as fast (executions to first bad report), and
 *   2. DPOR beats-or-ties the fuzzer on a majority of the kernels
 *      either can find, and
 *   3. at least one fixed kernel earns a checked
 *      no-bug-within-preemption-bound certificate.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "explore/explorer.hh"
#include "fuzz/fuzzer.hh"
#include "study/tables.hh"

using namespace golite;
using corpus::BugCase;
using corpus::Variant;
using explore::ExploreMode;
using explore::ExploreResult;

namespace
{

constexpr size_t kBudget = 300;
constexpr size_t kCertBudget = 20000;
constexpr int kCertBound = 1;

struct KernelRow
{
    std::string id;
    size_t naiveExecs = 0; ///< 1-based first-bug execution, 0=never
    size_t dporExecs = 0;  ///< same, for the DPOR walker
    size_t fuzzExecs = 0;  ///< same, for the coverage-guided fuzzer
    size_t dporTotal = 0;  ///< executions DPOR spent in the budget
    size_t dporRedundant = 0; ///< sleep-set-blocked runs among them
};

ExploreResult
exploreKernel(const BugCase &bug, Variant variant, ExploreMode mode,
              size_t budget, int bound = 0)
{
    explore::ExploreOptions eo;
    eo.maxSchedules = budget;
    eo.mode = mode;
    eo.preemptionBound = bound;
    return bench::exploreKernelDetected(bug, variant, eo);
}

size_t
fuzzToFirstBug(const BugCase &bug)
{
    fuzz::FuzzOptions fo;
    fo.maxExecutions = kBudget;
    fo.workers = 1; // deterministic, comparable to the serial walks
    fo.fuzzSeed = 1;
    fo.attachRaceDetector = true;
    return fuzz::fuzzKernel(bug, Variant::Buggy, fo).executionsToBug;
}

std::string
cell(size_t v)
{
    return v == 0 ? std::string("-") : std::to_string(v);
}

struct CertRow
{
    std::string id;
    bool certified = false;
    size_t executions = 0;
    std::string certificate;
};

std::string
renderJson(const std::vector<KernelRow> &rows,
           const std::vector<CertRow> &certs, size_t comparable,
           size_t dpor_wins)
{
    std::string out = "{\n";
    out += "  \"budget\": " + std::to_string(kBudget) + ",\n";
    out += "  \"kernels\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const KernelRow &r = rows[i];
        out += "    {\"id\": \"" + r.id +
               "\", \"naive_execs\": " + std::to_string(r.naiveExecs) +
               ", \"dpor_execs\": " + std::to_string(r.dporExecs) +
               ", \"fuzz_execs\": " + std::to_string(r.fuzzExecs) +
               ", \"dpor_total\": " + std::to_string(r.dporTotal) +
               ", \"dpor_redundant\": " +
               std::to_string(r.dporRedundant) + "}";
        out += (i + 1 < rows.size()) ? ",\n" : "\n";
    }
    out += "  ],\n";
    out += "  \"certificates\": [\n";
    for (size_t i = 0; i < certs.size(); ++i) {
        const CertRow &c = certs[i];
        out += "    {\"id\": \"" + c.id + "\", \"bound\": " +
               std::to_string(kCertBound) + ", \"certified\": " +
               (c.certified ? "true" : "false") +
               ", \"executions\": " + std::to_string(c.executions) +
               "}";
        out += (i + 1 < certs.size()) ? ",\n" : "\n";
    }
    out += "  ],\n";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  \"summary\": {\"kernels\": %zu, \"comparable\": "
                  "%zu, \"dpor_wins\": %zu, \"win_rate\": %.3f}\n",
                  rows.size(), comparable, dpor_wins,
                  comparable ? 1.0 * dpor_wins / comparable : 0.0);
    out += buf;
    out += "}\n";
    return out;
}

} // namespace

int
main()
{
    bench::banner(
        "Extension - partial-order-reduced exploration",
        "replaces Section 4's repeated-run protocol with DPOR");

    std::vector<KernelRow> rows;
    size_t naive_found = 0;
    size_t dpor_found = 0;
    size_t fuzz_found = 0;
    size_t comparable = 0; ///< kernels where dpor or fuzz finds it
    size_t dpor_wins = 0;
    size_t dpor_not_slower_than_naive = 0;

    std::printf("budget per kernel per searcher: %zu executions\n\n",
                kBudget);
    study::TextTable table(
        {"bug", "naive", "dpor", "fuzz", "dpor total", "redundant"});
    for (const BugCase &bug : corpus::corpus()) {
        KernelRow row;
        row.id = bug.info.id;
        const ExploreResult naive = exploreKernel(
            bug, Variant::Buggy, ExploreMode::Naive, kBudget);
        const ExploreResult dpor = exploreKernel(
            bug, Variant::Buggy, ExploreMode::Dpor, kBudget);
        row.naiveExecs = naive.firstBadAt;
        row.dporExecs = dpor.firstBadAt;
        row.fuzzExecs = fuzzToFirstBug(bug);
        row.dporTotal = dpor.executions;
        row.dporRedundant = dpor.redundant;

        naive_found += row.naiveExecs != 0;
        dpor_found += row.dporExecs != 0;
        fuzz_found += row.fuzzExecs != 0;
        if (row.naiveExecs == 0 ||
            (row.dporExecs != 0 && row.dporExecs <= row.naiveExecs))
            dpor_not_slower_than_naive++;
        if (row.dporExecs != 0 || row.fuzzExecs != 0) {
            comparable++;
            if (row.dporExecs != 0 &&
                (row.fuzzExecs == 0 ||
                 row.dporExecs <= row.fuzzExecs))
                dpor_wins++;
        }
        table.addRow({row.id, cell(row.naiveExecs),
                      cell(row.dporExecs), cell(row.fuzzExecs),
                      std::to_string(row.dporTotal),
                      std::to_string(row.dporRedundant)});
        rows.push_back(row);
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nfound within budget: naive %zu/%zu, dpor %zu/%zu, "
                "fuzz %zu/%zu\n",
                naive_found, rows.size(), dpor_found, rows.size(),
                fuzz_found, rows.size());
    const double win_rate =
        comparable ? 1.0 * dpor_wins / comparable : 0.0;
    std::printf("dpor at least as fast as fuzz: %zu/%zu (%.1f%%)\n",
                dpor_wins, comparable, 100.0 * win_rate);

    // Bounded-exhaustiveness certificates: the DPOR walker finishes
    // the (preemption-bounded) schedule space of a fixed kernel with
    // no bad report, which is a machine-checked "no bug within bound
    // k" statement — the naive walker's spaces are too big to close
    // under the same budget for most kernels.
    const char *cert_kernels[] = {"grpc-795", "etcd-6632",
                                  "moby-17176", "docker-5416"};
    std::vector<CertRow> certs;
    std::printf("\nfixed-variant certificates (preemption bound %d, "
                "budget %zu):\n",
                kCertBound, kCertBudget);
    size_t certified = 0;
    for (const char *id : cert_kernels) {
        const BugCase *bug = corpus::findBug(id);
        const ExploreResult fixed =
            exploreKernel(*bug, Variant::Fixed, ExploreMode::Dpor,
                          kCertBudget, kCertBound);
        CertRow c;
        c.id = id;
        c.certified = fixed.certified();
        c.executions = fixed.executions;
        c.certificate = fixed.certificate();
        certified += c.certified;
        std::printf("  %-18s %s\n", id, c.certificate.c_str());
        certs.push_back(c);
    }

    const std::string json =
        renderJson(rows, certs, comparable, dpor_wins);
    std::FILE *f = std::fopen("BENCH_explore.json", "w");
    if (f != nullptr) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("\nwrote BENCH_explore.json (%zu kernels)\n",
                    rows.size());
    }

    if (dpor_not_slower_than_naive < rows.size()) {
        std::printf("FAIL: DPOR slower than naive enumeration on "
                    "%zu kernel(s)\n",
                    rows.size() - dpor_not_slower_than_naive);
        return 1;
    }
    if (win_rate <= 0.5) {
        std::printf("FAIL: DPOR win rate %.1f%% not a majority\n",
                    100.0 * win_rate);
        return 1;
    }
    if (certified == 0) {
        std::printf("FAIL: no fixed kernel certified under the "
                    "preemption bound\n");
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
