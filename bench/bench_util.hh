/**
 * @file
 * Shared helpers for the bench binaries: banner printing and the
 * manifesting-seed search used by the detector-evaluation benches.
 */

#ifndef GOLITE_BENCH_BENCH_UTIL_HH
#define GOLITE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <optional>
#include <string>

#include "corpus/bug.hh"
#include "explore/explorer.hh"
#include "race/detector.hh"

namespace golite::bench
{

inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("==================================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("==================================================="
                "=============\n\n");
}

/**
 * Find a seed under which the buggy variant manifests (the paper's
 * reproduction protocol: run until the symptom shows). Returns
 * nullopt if none of the first @p max_seeds seeds triggers.
 */
inline std::optional<uint64_t>
findManifestingSeed(const corpus::BugCase &bug, int max_seeds = 200)
{
    for (int seed = 0; seed < max_seeds; ++seed) {
        RunOptions options;
        options.seed = static_cast<uint64_t>(seed);
        if (bug.run(corpus::Variant::Buggy, options).manifested)
            return static_cast<uint64_t>(seed);
    }
    return std::nullopt;
}

/**
 * Systematic exploration of a corpus kernel on the same
 * bug-predicate footing as the fuzz and random-rerun searchers: race
 * detector attached, kernel-level manifestation folded into the
 * report. Detector-only races and wrong-result kernels count as hits
 * for the explorer's tally exactly as they do for the other two.
 */
inline explore::ExploreResult
exploreKernelDetected(const corpus::BugCase &bug,
                      corpus::Variant variant,
                      explore::ExploreOptions options)
{
    race::Detector det(4);
    return explore::exploreAll(
        [&bug, variant, &det](const RunOptions &base) {
            det.reset();
            RunOptions ro = base;
            ro.subscribers.push_back(&det);
            const corpus::BugOutcome out = bug.run(variant, ro);
            RunReport report = out.report;
            if (out.manifested)
                report.raceMessages.push_back(
                    "kernel bug manifested: " + out.note);
            return report;
        },
        options);
}

} // namespace golite::bench

#endif // GOLITE_BENCH_BENCH_UTIL_HH
