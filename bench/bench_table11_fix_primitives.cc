/**
 * @file
 * Table 11: primitives leveraged in non-blocking patches (94 patch
 * primitives over 86 bugs), with the chan-Channel lift.
 */

#include <cstdio>

#include "bench_util.hh"
#include "study/tables.hh"

int
main()
{
    golite::bench::banner(
        "Table 11 - Primitives in non-blocking patches",
        "Tu et al., ASPLOS 2019, Table 11");
    std::printf("%s\n", golite::study::renderTable11().c_str());
    std::printf(
        "Shape check (paper, Observation 9): Mutex remains the main\n"
        "fix primitive, but channel is second and is used to fix\n"
        "shared-memory bugs too (Implication 7).\n");
    return 0;
}
