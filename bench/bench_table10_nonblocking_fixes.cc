/**
 * @file
 * Table 10: fix strategies for non-blocking bugs, with the stated
 * lift correlations.
 */

#include <cstdio>

#include "bench_util.hh"
#include "study/tables.hh"

int
main()
{
    golite::bench::banner(
        "Table 10 - Non-blocking bug fix strategies",
        "Tu et al., ASPLOS 2019, Table 10 + lift");
    std::printf("%s\n", golite::study::renderTable10().c_str());
    std::printf(
        "Shape check (paper): ~69%% of non-blocking fixes restrict\n"
        "timing (Add/Move); 10 bypass the racy instructions; 14\n"
        "privatize data (all shared-memory bugs).\n");
    return 0;
}
