/**
 * @file
 * Extension experiment: coverage-guided schedule fuzzing vs the
 * paper's repeated-run reproduction protocol vs systematic
 * exploration — executions to first bug, per corpus kernel.
 *
 * Three searchers get the same execution budget per kernel:
 *
 *   - rand:    the paper's Section 4 protocol — rerun the buggy
 *              variant under fresh random seeds until the bug shows
 *              (race detector attached, like a -race build),
 *   - fuzz:    fuzz::fuzzKernel — record schedules, mutate them,
 *              keep mutants reaching new concurrency states,
 *   - explore: the systematic explorer's DFS (schedules to the first
 *              bad report; preemption disabled and report-level
 *              predicate only, so detector-only races and
 *              wrong-result kernels are out of its reach — that gap
 *              is the point of measuring it here),
 *   - dpor:    the same explorer with dynamic partial-order
 *              reduction and the full bug predicate (detector
 *              attached, manifestation folded into the report) —
 *              the strongest searcher; bench_ext_explorer gates it
 *              against naive enumeration and the fuzzer.
 *
 * Everything is deterministic (single fuzz worker, fixed seeds,
 * stable coverage hashes), so BENCH_fuzz.json is byte-stable and CI
 * diffs it against baselines/BENCH_fuzz.json. The bench itself exits
 * non-zero unless the fuzzer finds the bug at least as fast as the
 * random protocol on >= 75% of the kernels either side can find at
 * all (ties count: most kernels manifest on the very first
 * execution, where "faster than 1" is impossible).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "explore/explorer.hh"
#include "fuzz/fuzzer.hh"
#include "golite/golite.hh"
#include "study/tables.hh"

using namespace golite;
using corpus::BugCase;
using corpus::Variant;

namespace
{

constexpr size_t kBudget = 300;

struct KernelRow
{
    std::string id;
    size_t randExecs = 0;    ///< 1-based first-bug execution, 0=never
    size_t fuzzExecs = 0;    ///< same, for the fuzzer
    size_t exploreSchedules = 0; ///< explorer firstBadAt, 0=never
    size_t dporExecs = 0;        ///< DPOR-mode firstBadAt, 0=never
    size_t coverageStates = 0;   ///< fuzzer campaign coverage
};

/** The paper's protocol: fresh random seeds until the bug manifests
 *  or the detector reports, budget capped. */
size_t
randomToFirstBug(const BugCase &bug)
{
    race::Detector det(4);
    for (size_t i = 1; i <= kBudget; ++i) {
        det.reset();
        RunOptions ro;
        ro.seed = 0xb5ad4eceda1ce2a9ULL ^ (i * 0x2545f4914f6cdd1dULL);
        ro.subscribers.push_back(&det);
        const corpus::BugOutcome out = bug.run(Variant::Buggy, ro);
        if (out.manifested || !out.report.raceMessages.empty())
            return i;
    }
    return 0;
}

size_t
fuzzToFirstBug(const BugCase &bug, size_t &coverage_states)
{
    fuzz::FuzzOptions fo;
    fo.maxExecutions = kBudget;
    fo.workers = 1; // deterministic, comparable to the serial sweep
    fo.fuzzSeed = 1;
    fo.attachRaceDetector = true;
    const fuzz::FuzzResult r =
        fuzz::fuzzKernel(bug, Variant::Buggy, fo);
    coverage_states = r.coverageStates;
    return r.executionsToBug;
}

size_t
exploreToFirstBug(const BugCase &bug)
{
    explore::ExploreOptions eo;
    eo.maxSchedules = kBudget;
    const explore::ExploreResult r = explore::exploreAll(
        [&bug](const RunOptions &ro) {
            return bug.run(Variant::Buggy, ro).report;
        },
        eo);
    return r.firstBadAt;
}

size_t
dporToFirstBug(const BugCase &bug)
{
    explore::ExploreOptions eo;
    eo.maxSchedules = kBudget;
    eo.mode = explore::ExploreMode::Dpor;
    return bench::exploreKernelDetected(bug, Variant::Buggy, eo)
        .firstBadAt;
}

std::string
cell(size_t v)
{
    return v == 0 ? std::string("-") : std::to_string(v);
}

std::string
renderJson(const std::vector<KernelRow> &rows, size_t comparable,
           size_t fuzz_wins)
{
    std::string out = "{\n";
    out += "  \"budget\": " + std::to_string(kBudget) + ",\n";
    out += "  \"kernels\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const KernelRow &r = rows[i];
        out += "    {\"id\": \"" + r.id +
               "\", \"rand_execs\": " + std::to_string(r.randExecs) +
               ", \"fuzz_execs\": " + std::to_string(r.fuzzExecs) +
               ", \"explore_schedules\": " +
               std::to_string(r.exploreSchedules) +
               ", \"dpor_execs\": " + std::to_string(r.dporExecs) +
               ", \"coverage_states\": " +
               std::to_string(r.coverageStates) + "}";
        out += (i + 1 < rows.size()) ? ",\n" : "\n";
    }
    out += "  ],\n";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  \"summary\": {\"kernels\": %zu, \"comparable\": "
                  "%zu, \"fuzz_wins\": %zu, \"win_rate\": %.3f}\n",
                  rows.size(), comparable, fuzz_wins,
                  comparable ? 1.0 * fuzz_wins / comparable : 0.0);
    out += buf;
    out += "}\n";
    return out;
}

} // namespace

int
main()
{
    bench::banner(
        "Extension - coverage-guided schedule fuzzing",
        "executions to first bug: random rerun vs fuzzer vs explorer");
    std::printf("budget per kernel per searcher: %zu executions\n\n",
                kBudget);

    std::vector<KernelRow> rows;
    size_t comparable = 0;
    size_t fuzz_wins = 0;
    size_t rand_found = 0;
    size_t fuzz_found = 0;
    size_t explore_found = 0;
    size_t dpor_found = 0;

    study::TextTable table(
        {"bug", "rand", "fuzz", "explore", "dpor", "cov states"});
    for (const BugCase &bug : corpus::corpus()) {
        KernelRow row;
        row.id = bug.info.id;
        row.randExecs = randomToFirstBug(bug);
        row.fuzzExecs = fuzzToFirstBug(bug, row.coverageStates);
        row.exploreSchedules = exploreToFirstBug(bug);
        row.dporExecs = dporToFirstBug(bug);

        rand_found += row.randExecs != 0;
        fuzz_found += row.fuzzExecs != 0;
        explore_found += row.exploreSchedules != 0;
        dpor_found += row.dporExecs != 0;
        if (row.randExecs != 0 || row.fuzzExecs != 0) {
            comparable++;
            if (row.fuzzExecs != 0 &&
                (row.randExecs == 0 ||
                 row.fuzzExecs <= row.randExecs))
                fuzz_wins++;
        }
        table.addRow({row.id, cell(row.randExecs),
                      cell(row.fuzzExecs),
                      cell(row.exploreSchedules),
                      cell(row.dporExecs),
                      std::to_string(row.coverageStates)});
        rows.push_back(row);
    }
    std::printf("%s", table.render().c_str());

    const double win_rate =
        comparable ? 1.0 * fuzz_wins / comparable : 0.0;
    std::printf("\nfound within budget: rand %zu/%zu, fuzz %zu/%zu, "
                "explore %zu/%zu, dpor %zu/%zu\n",
                rand_found, rows.size(), fuzz_found, rows.size(),
                explore_found, rows.size(), dpor_found, rows.size());
    std::printf("fuzz at least as fast as rand: %zu/%zu (%.1f%%)\n",
                fuzz_wins, comparable, 100.0 * win_rate);

    const std::string json =
        renderJson(rows, comparable, fuzz_wins);
    std::FILE *f = std::fopen("BENCH_fuzz.json", "w");
    if (f != nullptr) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("\nwrote BENCH_fuzz.json (%zu kernels)\n",
                    rows.size());
    }

    if (fuzz_found < rand_found) {
        std::printf("FAIL: fuzzer finds fewer bugs than the random "
                    "protocol\n");
        return 1;
    }
    if (win_rate < 0.75) {
        std::printf("FAIL: fuzz win rate %.1f%% below the 75%% "
                    "acceptance bar\n",
                    100.0 * win_rate);
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
