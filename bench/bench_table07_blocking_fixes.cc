/**
 * @file
 * Table 7: fix strategies for blocking bugs, with the cause-fix lift
 * analysis and the patch-size observation (Section 5.2).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "study/record.hh"
#include "study/stats.hh"
#include "study/tables.hh"

using namespace golite::study;

int
main()
{
    golite::bench::banner("Table 7 - Blocking bug fix strategies",
                          "Tu et al., ASPLOS 2019, Table 7 + lift");
    std::printf("%s\n", renderTable7().c_str());

    std::vector<int> patch_sizes;
    for (const BugRecord &rec : database()) {
        if (rec.behavior == Behavior::Blocking)
            patch_sizes.push_back(rec.patchLines);
    }
    std::printf("mean blocking patch size: %.1f lines (paper: 6.8)\n\n",
                mean(patch_sizes));
    std::printf(
        "Shape check (paper, Observation 6): fixes correlate with\n"
        "causes - Mutex bugs are moved, Chan bugs get added\n"
        "operations - and patches are small.\n");
    return 0;
}
