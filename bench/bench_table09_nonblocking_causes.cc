/**
 * @file
 * Table 9: non-blocking bug root causes, plus live validation of the
 * non-blocking kernels (each must misbehave or race under some
 * schedule; its fix must be silent).
 */

#include <cstdio>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "race/detector.hh"
#include "study/tables.hh"

using namespace golite;
using corpus::Behavior;
using corpus::BugCase;
using corpus::Variant;

int
main()
{
    bench::banner("Table 9 - Non-blocking bug causes",
                  "Tu et al., ASPLOS 2019, Table 9");
    std::printf("%s\n", study::renderTable9().c_str());
    std::printf(
        "Shape check (paper, Observations 7/8): ~80%% of non-blocking\n"
        "bugs fail to protect shared memory; about two thirds of\n"
        "those are traditional bugs; message passing contributes far\n"
        "fewer (chan 16, lib 1).\n\n");

    std::printf("Live validation: executing every non-blocking "
                "kernel\n");
    std::printf("%-18s %-20s %-22s %s\n", "bug", "cause",
                "buggy (worst seed)", "fixed");
    std::printf("%s\n", std::string(84, '-').c_str());
    for (const BugCase &bug : corpus::corpus()) {
        if (bug.info.behavior != Behavior::NonBlocking)
            continue;
        // Worst observed outcome across a seed sweep; pure races are
        // reported via the detector.
        std::string buggy_note = "silent";
        for (uint64_t seed = 0; seed < 60; ++seed) {
            race::Detector detector;
            RunOptions options;
            options.seed = seed;
            options.subscribers.push_back(&detector);
            auto outcome = bug.run(Variant::Buggy, options);
            if (outcome.manifested) {
                buggy_note = outcome.note;
                break;
            }
            if (!detector.reports().empty())
                buggy_note = "data race (detector)";
        }
        auto fixed = bug.run(Variant::Fixed, {});
        std::printf("%-18s %-20s %-22s %s\n", bug.info.id.c_str(),
                    corpus::subCauseName(bug.info.subcause),
                    buggy_note.c_str(), fixed.note.c_str());
    }
    return 0;
}
