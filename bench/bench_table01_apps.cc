/**
 * @file
 * Table 1: the six studied applications (stars, commits,
 * contributors, LOC, development history).
 */

#include <cstdio>

#include "bench_util.hh"
#include "study/tables.hh"

int
main()
{
    golite::bench::banner(
        "Table 1 - Information of selected applications",
        "Tu et al., ASPLOS 2019, Table 1");
    std::printf("%s\n", golite::study::renderTable1().c_str());
    std::printf("Shape check: LOC spans 9K (BoltDB) to >2M "
                "(Kubernetes); all apps have 3+ years of history.\n");
    return 0;
}
