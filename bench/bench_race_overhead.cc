/**
 * @file
 * Race-detector overhead: ns/access on an instrumented-heavy kernel
 * and sweep wall-clock with reusable (reset) detectors.
 *
 * The detector is the dominant cost of every -race protocol sweep
 * (Table 12, the shadow ablation), so this bench gates the FastTrack
 * rework: it drives the memRead/memWrite hot path directly from
 * inside a run — several goroutines taking mutex-ordered bursts over
 * a small address set, the access shape bug kernels produce — and
 * A/Bs the epoch fast paths on vs off (setFastPath / the
 * GOLITE_RACE_FASTPATH=0 env), with a no-op-subscriber baseline
 * subtracted so the ratio compares detector work, not fixed harness
 * cost (the subscriber keeps the bus's mem-event lane active, so
 * both arms pay the same emission + dispatch overhead). The deep-history configuration must show >= 3x or the bench
 * fails. A second section times the Table 12
 * 100-seed corpus sweep with a fresh detector per seed vs one
 * reset() detector per worker. Results land in BENCH_race.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_json.hh"
#include "bench_util.hh"
#include "corpus/bug.hh"
#include "golite/golite.hh"
#include "parallel/sweep.hh"
#include "race/sharded.hh"

using namespace golite;
using corpus::Behavior;
using corpus::BugCase;
using corpus::Variant;

namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point begin, Clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

// The instrumented-heavy kernel: kGoroutines goroutines take turns
// under one mutex doing bursts of accesses over a shared address set.
// Burst reuse is what the epoch fast path accelerates; the rotating
// writers keep every shadow history full of foreign-goroutine cells,
// which is what the full scan pays for.
constexpr int kGoroutines = 4;
constexpr int kBursts = 32;
constexpr int kAddrs = 8;
constexpr int kReps = 32;
constexpr double kAccessesPerRun =
    double(kGoroutines) * kBursts * kAddrs * kReps;

void
heavyKernel()
{
    static int slots[kAddrs]; // addresses only; never dereferenced
    Mutex mu;
    WaitGroup wg;
    wg.add(kGoroutines);
    for (int g = 0; g < kGoroutines; ++g) {
        go([&] {
            Scheduler *sched = Scheduler::current();
            EventBus &bus = sched->bus();
            const uint64_t gid = sched->runningId();
            for (int b = 0; b < kBursts; ++b) {
                mu.lock();
                for (int a = 0; a < kAddrs; ++a) {
                    for (int r = 0; r < kReps; ++r) {
                        if (r & 1)
                            bus.memRead(&slots[a], "hot", gid);
                        else
                            bus.memWrite(&slots[a], "hot", gid);
                    }
                }
                mu.unlock();
            }
            wg.done();
        });
    }
    wg.wait();
}

/** Subscribes to the mem-access lane and discards every event:
 *  measures emission + bus dispatch with zero detector work. */
class NoopSink : public Subscriber
{
  public:
    EventMask
    eventMask() const override
    {
        return eventBit(EventKind::MemRead) |
               eventBit(EventKind::MemWrite);
    }
    void onEvent(const RuntimeEvent &) override {}
    void
    onMemAccess(const void *, const char *, uint64_t, bool) override
    {
    }
};

/** Noop with the detector's full mask, so the baseline arm pays the
 *  same bus emission/dispatch for every event kind the detector
 *  receives (spawn, finish, sync, mem, free). */
class DetectorMaskNoop : public NoopSink
{
  public:
    EventMask
    eventMask() const override
    {
        return race::Detector().eventMask();
    }
};

/** Mem-lane noop that ExecMode::Parallel accepts, for the baseline
 *  arm of the sharded-detector rows. */
class ParallelNoopSink : public NoopSink
{
  public:
    bool parallelSafe() const override { return true; }
};

/**
 * ns/access of the heavy kernel with race::Sharded attached — same
 * best-of-batches protocol as measureNsPerAccess. With @p threads ==
 * 0 the run is deterministic single-thread (directly comparable with
 * the fast-path rows: identical event stream); otherwise it is an
 * ExecMode::Parallel run on that many workers. A null @p sharded
 * measures the matching noop arm.
 */
double
measureShardedNsPerAccess(race::Sharded *sharded, unsigned threads,
                          int runs, int reps)
{
    ParallelNoopSink noop;
    RunOptions options;
    if (threads == 0) {
        options.policy = SchedPolicy::Fifo;
    } else {
        options.execMode = ExecMode::Parallel;
        options.parallelThreads = threads;
    }
    options.subscribers.push_back(
        sharded ? static_cast<Subscriber *>(sharded) : &noop);

    auto oneRun = [&] {
        if (sharded)
            sharded->reset();
        run(heavyKernel, options);
    };
    oneRun();

    double best = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
        const auto begin = Clock::now();
        for (int i = 0; i < runs; ++i)
            oneRun();
        best = std::min(best, seconds(begin, Clock::now()));
    }
    return best * 1e9 / (kAccessesPerRun * runs);
}

/**
 * ns/access of the heavy kernel: best (minimum) of @p reps timed
 * batches of @p runs runs each — the min is robust against scheduler
 * interference on loaded machines. A null @p detector measures the
 * kernel under a no-op subscriber, i.e. everything that is not
 * detector work.
 */
double
measureNsPerAccess(race::Detector *detector, size_t depth, int runs,
                   int reps)
{
    NoopSink noop;
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    options.subscribers.push_back(
        detector ? static_cast<Subscriber *>(detector) : &noop);

    auto oneRun = [&] {
        if (detector)
            detector->reset(depth);
        run(heavyKernel, options);
    };
    oneRun(); // warm up slab, tables, code paths

    double best = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
        const auto begin = Clock::now();
        for (int i = 0; i < runs; ++i)
            oneRun();
        best = std::min(best, seconds(begin, Clock::now()));
    }
    return best * 1e9 / (kAccessesPerRun * runs);
}

// --- Live-goroutine scaling ------------------------------------------
// L resident goroutines sit parked on a channel while a fixed churn
// load (repeated heavyKernel rounds) drives the access hot path. The
// per-event detector cost must not grow with L: slots are recycled,
// clocks are chunked-sparse, and parked residents that never
// synchronize with the churners stay out of every clock the hot path
// touches.

constexpr int kScaleRounds = 4; ///< churn rounds per timed batch
constexpr int kScaleBatches = 7; ///< timed batches (best-of)

/**
 * Wall seconds of the best timed churn batch with @p residents
 * parked, measured *inside* the run: a warm-up round parks every
 * resident first (buffered channel, so a blocking recv parks without
 * a pre-park release edge), after which residents are never scheduled
 * again and the timed window contains only churn scheduling, event
 * emission, and — in the detector arm — detector work. That makes
 * the O(residents) spawn/park/finish phase structurally excluded
 * instead of subtracted, which whole-run timing is too noisy for at
 * 10k+ residents. A null @p detector runs the full-detector-mask
 * noop arm.
 */
double
liveChurnSeconds(race::Detector *detector, size_t residents)
{
    DetectorMaskNoop noop;
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    options.stackBytes = 16 * 1024; // residents only park
    options.reapFinished = true;
    options.subscribers.push_back(
        detector ? static_cast<Subscriber *>(detector) : &noop);
    if (detector)
        detector->reset();
    double best = 1e100;
    run([&] {
        auto parked = makeChan<Unit>(1);
        for (size_t i = 0; i < residents; ++i)
            go([parked] { parked.recv(); });
        heavyKernel(); // parks the residents, warms the detector
        for (int batch = 0; batch < kScaleBatches; ++batch) {
            const auto begin = Clock::now();
            for (int r = 0; r < kScaleRounds; ++r)
                heavyKernel();
            best = std::min(best, seconds(begin, Clock::now()));
        }
        parked.close();
    }, options);
    return best;
}

/** Detector ns per churn access with @p residents parked (noop-arm
 *  baseline subtracted, so harness emission cost stays out). */
double
detectorNsPerEventAtLive(race::Detector &detector, size_t residents)
{
    const double det = liveChurnSeconds(&detector, residents);
    const double noop = liveChurnSeconds(nullptr, residents);
    return (det - noop) * 1e9 / (kAccessesPerRun * kScaleRounds);
}

} // namespace

int
main()
{
    bench::banner(
        "Race detector overhead - epoch fast paths + detector reuse",
        "perf gate for the Section 6.3 detector rework");

    bench::JsonReport json;
    bool ok = true;
    constexpr int kRuns = 10;
    constexpr int kTimedReps = 5;

    // --- ns/access A/B ---------------------------------------------
    // The no-op-subscriber baseline (kernel, scheduler, bus dispatch)
    // is subtracted from both arms so the speedup compares what the
    // detector itself spends per access — that cost, not the fixed
    // harness cost, is what the epoch fast paths remove.
    std::printf("instrumented-heavy kernel: %d goroutines x %d "
                "bursts x %d addrs x %d reps (%.0f accesses/run; "
                "best of %d x %d runs)\n\n",
                kGoroutines, kBursts, kAddrs, kReps, kAccessesPerRun,
                kTimedReps, kRuns);
    const double base =
        measureNsPerAccess(nullptr, 0, kRuns, kTimedReps);
    std::printf("no-op subscriber baseline: %.1f ns/access\n\n", base);
    json.add("ns_per_access/noop_hooks", 1e9 / base, base * 1e-9, 1);

    std::printf("%-12s %-14s %-14s %s\n", "shadow depth",
                "fastpath off", "fastpath on", "detector speedup");
    for (size_t depth : {size_t{4}, size_t{16}}) {
        race::Detector detector(depth);
        detector.setFastPath(false);
        const double off =
            measureNsPerAccess(&detector, depth, kRuns, kTimedReps);
        detector.setFastPath(true);
        const double on =
            measureNsPerAccess(&detector, depth, kRuns, kTimedReps);
        const double speedup = (off - base) / (on - base);
        std::printf("%-12zu %9.1f ns  %9.1f ns  %8.2fx\n", depth, off,
                    on, speedup);
        const std::string stem =
            "ns_per_access/depth" + std::to_string(depth);
        json.add(stem + "/fastpath_off", 1e9 / off, off * 1e-9, 1);
        json.add(stem + "/fastpath_on", 1e9 / on, on * 1e-9, 1);
        if (depth == 16 && speedup < 3.0) {
            std::printf("FAILED: %.2fx at depth 16 (want >= 3x from "
                        "the epoch fast paths)\n",
                        speedup);
            ok = false;
        }
    }

    // --- Sharded-mode rows -----------------------------------------
    // race::Sharded is the ExecMode::Parallel detector. Its serial
    // row sees the identical event stream as the fast-path rows
    // above, so "sharded serial vs fastpath on" is a pure detector
    // comparison; the parallel row adds real worker concurrency (and
    // its scheduler/bus costs, which the parallel noop arm
    // subtracts). Gate: per-access cost within 2x of the
    // single-thread fast path under 8 workers — only meaningful on a
    // machine that can actually run 8 threads, so it arms on
    // hardware_concurrency() >= 8 and GOLITE_SHARDED_GATE=0 disables
    // it (the rows are always printed and recorded).
    {
        race::Detector fastpath(4);
        fastpath.setFastPath(true);
        const double on4 =
            measureNsPerAccess(&fastpath, 4, kRuns, kTimedReps);

        race::Sharded sharded;
        const double serial_ns =
            measureShardedNsPerAccess(&sharded, 0, kRuns, kTimedReps);
        json.add("ns_per_access/sharded_serial", 1e9 / serial_ns,
                 serial_ns * 1e-9, 1);

        const unsigned hw = std::thread::hardware_concurrency();
        const unsigned workers = std::min(8u, std::max(2u, hw));
        const double par_base = measureShardedNsPerAccess(
            nullptr, workers, kRuns, kTimedReps);
        const double par_ns = measureShardedNsPerAccess(
            &sharded, workers, kRuns, kTimedReps);
        json.add("ns_per_access/sharded_parallel", 1e9 / par_ns,
                 par_ns * 1e-9, workers);

        const double serial_ratio =
            (serial_ns - base) / std::max(on4 - base, 1e-9);
        const double par_ratio =
            (par_ns - par_base) / std::max(on4 - base, 1e-9);
        std::printf("\nsharded detector (vs depth-4 fastpath %.1f "
                    "ns/access):\n",
                    on4);
        std::printf("  serial          %9.1f ns  %8.2fx\n", serial_ns,
                    serial_ratio);
        std::printf("  parallel (w%u)   %9.1f ns  %8.2fx\n", workers,
                    par_ns, par_ratio);

        const char *gate_env = std::getenv("GOLITE_SHARDED_GATE");
        const bool gate_off =
            gate_env != nullptr && gate_env[0] == '0';
        if (hw >= 8 && !gate_off) {
            if (par_ratio > 2.0) {
                std::printf("FAILED: sharded parallel per-access cost "
                            "%.2fx the single-thread fast path (want "
                            "<= 2x)\n",
                            par_ratio);
                ok = false;
            }
        } else {
            std::printf("  (2x gate skipped: %s)\n",
                        gate_off ? "GOLITE_SHARDED_GATE=0"
                                 : "needs >= 8 hardware threads");
        }
    }

    // --- Per-event cost vs live goroutine count --------------------
    // The slot-recycling/sparse-clock gate: detector cost per access
    // must stay flat (within 2x) from 100 to 10k parked residents.
    // 100k is reported for the curve but not gated (its run is
    // dominated by spawn churn and noisier on loaded machines).
    std::printf("\nper-access detector cost vs live goroutines "
                "(best of %d batches x %d churn rounds, %.0f "
                "accesses/batch):\n",
                kScaleBatches, kScaleRounds,
                kAccessesPerRun * kScaleRounds);
    std::printf("%-12s %-16s %s\n", "live", "detector cost",
                "vs 100 live");
    double ns_at_100 = 0, ns_at_10k = 0;
    for (size_t live : {size_t{100}, size_t{1000}, size_t{10000},
                        size_t{100000}}) {
        race::Detector detector;
        const double ns = detectorNsPerEventAtLive(detector, live);
        if (live == 100)
            ns_at_100 = ns;
        if (live == 10000)
            ns_at_10k = ns;
        std::printf("%-12zu %9.1f ns     %6.2fx\n", live, ns,
                    ns_at_100 > 0 ? ns / ns_at_100 : 0.0);
        json.add("live_scaling/live" + std::to_string(live) +
                     "/detector_ns_per_event",
                 1e9 / ns, ns * 1e-9, 1);
    }
    if (ns_at_100 > 0 && ns_at_10k / ns_at_100 > 2.0) {
        std::printf("FAILED: %.2fx per-access cost growth from 100 "
                    "to 10k live goroutines (want <= 2x)\n",
                    ns_at_10k / ns_at_100);
        ok = false;
    }

    // --- Detection parity spot-check (full gate: race_diff_test) ---
    int parity_runs = 0, parity_mismatches = 0;
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::NonBlocking, true)) {
        for (uint64_t seed = 0; seed < 10; ++seed) {
            bool raced[2];
            for (const bool fast : {false, true}) {
                race::Detector detector;
                detector.setFastPath(fast);
                RunOptions options;
                options.seed = seed;
                options.subscribers.push_back(&detector);
                bug->run(Variant::Buggy, options);
                raced[fast] = !detector.reports().empty();
            }
            parity_runs++;
            parity_mismatches += raced[0] != raced[1];
        }
    }
    std::printf("\nfastpath on/off detection parity: %d/%d runs "
                "agree\n",
                parity_runs - parity_mismatches, parity_runs);
    if (parity_mismatches != 0) {
        std::printf("FAILED: fast path changed detection outcomes\n");
        ok = false;
    }

    // --- Sweep wall-clock: fresh detector/seed vs reset() reuse ----
    constexpr int kSeeds = 100;
    std::vector<std::function<RunReport()>> fresh, reused;
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::NonBlocking, true)) {
        for (int seed = 0; seed < kSeeds; ++seed) {
            fresh.push_back([bug, seed] {
                race::Detector detector;
                RunOptions options;
                options.seed = static_cast<uint64_t>(seed);
                options.subscribers.push_back(&detector);
                return bug->run(Variant::Buggy, options).report;
            });
            reused.push_back([bug, seed] {
                race::Detector &detector =
                    parallel::threadLocalDetector();
                RunOptions options;
                options.seed = static_cast<uint64_t>(seed);
                options.subscribers.push_back(&detector);
                return bug->run(Variant::Buggy, options).report;
            });
        }
    }
    std::printf("\nTable 12 sweep (%zu runs), fresh vs reused "
                "detectors:\n",
                fresh.size());
    for (unsigned workers : {1u, 4u, 8u}) {
        parallel::SweepOptions sweep;
        sweep.workers = workers;
        double wall[2];
        const char *names[2] = {"fresh", "reused"};
        const std::vector<std::function<RunReport()>> *jobs[2] = {
            &fresh, &reused};
        for (int arm = 0; arm < 2; ++arm) {
            const auto begin = Clock::now();
            const auto reports = parallel::runJobs(*jobs[arm], sweep);
            wall[arm] = seconds(begin, Clock::now());
            json.add("sweep_table12/" + std::string(names[arm]) +
                         "/w" + std::to_string(workers),
                     reports.size() / wall[arm], wall[arm], workers);
        }
        std::printf("  %u worker(s)  fresh %7.3f s  reused %7.3f s  "
                    "(%.2fx)\n",
                    workers, wall[0], wall[1], wall[0] / wall[1]);
    }

    json.writeFile("BENCH_race.json");
    json.writeSchemaFile("BENCH_race_schema.json");
    std::printf("\nwrote BENCH_race.json (%zu entries) + "
                "BENCH_race_schema.json\n",
                json.size());
    if (!ok)
        std::printf("\nFAILED (see above)\n");
    return ok ? 0 : 1;
}
