/**
 * @file
 * Scaling harness for the parallel run machinery: the Table 8-shaped
 * corpus sweep at 1/2/4/8 workers, with every parallel per-run report
 * checked bit-identical (RunReport::fingerprint) against the serial
 * baseline, plus a stack-pool A/B on the spawn/join hot path.
 *
 * The fingerprint gate is the load-bearing claim — parallelism must
 * not perturb a single run — and fails the binary on any mismatch at
 * any worker count. The speedup gate (>= 3x at 8 workers) is only
 * enforced when the host actually has 8 hardware threads; on smaller
 * machines the numbers are still printed and written to
 * BENCH_parallel.json for the record.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hh"
#include "bench_util.hh"
#include "corpus/bug.hh"
#include "golite/golite.hh"
#include "parallel/sweep.hh"
#include "runtime/stack_pool.hh"

using namespace golite;
using corpus::Behavior;
using corpus::BugCase;
using corpus::Variant;

namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point begin, Clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

/**
 * The sweep under test: every reproduced blocking bug x kSeeds seeds,
 * buggy variant, fresh waitgraph::Detector per run — the Table 8
 * protocol inner loop.
 */
constexpr int kSeeds = 50;

std::vector<std::function<RunReport()>>
protocolJobs()
{
    std::vector<std::function<RunReport()>> jobs;
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::Blocking, true)) {
        for (int seed = 0; seed < kSeeds; ++seed) {
            jobs.push_back([bug, seed] {
                waitgraph::Detector det;
                RunOptions options;
                options.seed = static_cast<uint64_t>(seed);
                options.subscribers.push_back(&det);
                return bug->run(Variant::Buggy, options).report;
            });
        }
    }
    return jobs;
}

} // namespace

int
main()
{
    bench::banner(
        "Parallel scaling - multi-worker sweeps + fiber stack pool",
        "harness extension; protocol shape from Tu et al., Table 8");

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("hardware threads: %u\n\n", hw);

    bench::JsonReport json;
    bool ok = true;

    // --- Serial baseline -------------------------------------------
    const auto jobs = protocolJobs();
    const auto serial_begin = Clock::now();
    std::vector<std::string> serial_prints;
    serial_prints.reserve(jobs.size());
    for (const auto &job : jobs)
        serial_prints.push_back(job().fingerprint());
    const double serial_s = seconds(serial_begin, Clock::now());
    std::printf("protocol sweep: %zu runs (21 bugs x %d seeds)\n",
                jobs.size(), kSeeds);
    std::printf("  serial       %8.3f s  %8.0f runs/s\n", serial_s,
                jobs.size() / serial_s);
    json.add("protocol_sweep/serial", jobs.size() / serial_s,
             serial_s, 1);

    // --- Worker scaling, fingerprint-gated -------------------------
    double w1_s = serial_s;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        parallel::SweepOptions sweep;
        sweep.workers = workers;
        const auto begin = Clock::now();
        const auto reports = parallel::runJobs(jobs, sweep);
        const double took = seconds(begin, Clock::now());
        size_t mismatches = 0;
        for (size_t i = 0; i < reports.size(); ++i)
            if (reports[i].fingerprint() != serial_prints[i])
                mismatches++;
        if (workers == 1)
            w1_s = took;
        const double speedup = w1_s / took;
        std::printf("  %u worker(s)  %8.3f s  %8.0f runs/s  "
                    "%.2fx vs 1 worker  %s\n",
                    workers, took, jobs.size() / took, speedup,
                    mismatches == 0 ? "reports bit-identical"
                                    : "REPORTS DIVERGED");
        json.add("protocol_sweep/w" + std::to_string(workers),
                 jobs.size() / took, took, workers);
        if (mismatches != 0) {
            std::printf("FAILED: %zu/%zu parallel reports differ "
                        "from serial at %u workers\n",
                        mismatches, reports.size(), workers);
            ok = false;
        }
        if (workers == 8 && hw >= 8 && speedup < 3.0) {
            std::printf("FAILED: %.2fx speedup at 8 workers "
                        "(want >= 3x on >= 8 hardware threads)\n",
                        speedup);
            ok = false;
        }
        if (workers == 8 && hw < 8)
            std::printf("  (speedup gate skipped: %u hardware "
                        "threads < 8)\n",
                        hw);
    }

    // --- Stack pool A/B on the spawn/join hot path -----------------
    constexpr int kGoroutines = 500;
    constexpr int kRuns = 40;
    const auto spawn_join = [] {
        WaitGroup wg;
        wg.add(kGoroutines);
        for (int i = 0; i < kGoroutines; ++i)
            go([&wg] { wg.done(); });
        wg.wait();
    };
    const double total_spawns =
        static_cast<double>(kGoroutines) * kRuns;

    std::printf("\nstack pool A/B: %d runs x %d goroutines\n", kRuns,
                kGoroutines);
    double pool_s[2] = {0, 0};
    for (const bool pooled : {false, true}) {
        StackPool::setEnabled(pooled);
        StackPool::local().clear(); // cold start for both variants
        run(spawn_join);            // warm up code paths
        const auto begin = Clock::now();
        for (int i = 0; i < kRuns; ++i)
            run(spawn_join);
        const double took = seconds(begin, Clock::now());
        pool_s[pooled] = took;
        const auto &stats = StackPool::local().stats();
        std::printf("  pool %-3s  %8.3f s  %10.0f spawns/s  "
                    "(mapped %llu, reused %llu)\n",
                    pooled ? "on" : "off", took, total_spawns / took,
                    static_cast<unsigned long long>(stats.mapped),
                    static_cast<unsigned long long>(stats.reused));
        json.add(pooled ? "spawn_join/pool_on"
                        : "spawn_join/pool_off",
                 total_spawns / took, took, 1);
    }
    StackPool::setEnabled(true);
    std::printf("  spawn/join speedup from pooling: %.2fx\n",
                pool_s[0] / pool_s[1]);

    json.writeFile("BENCH_parallel.json");
    std::printf("\nwrote BENCH_parallel.json (%zu entries)\n",
                json.size());
    if (!ok)
        std::printf("\nFAILED (see above)\n");
    return ok ? 0 : 1;
}
