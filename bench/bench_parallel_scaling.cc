/**
 * @file
 * Scaling harness for the parallel run machinery: the Table 8-shaped
 * corpus sweep at 1/2/4/8 workers, with every parallel per-run report
 * checked bit-identical (RunReport::fingerprint) against the serial
 * baseline, plus a stack-pool A/B on the spawn/join hot path.
 *
 * The workload is calibrated, not fixed: a probe run sizes the seed
 * count so the serial baseline takes at least GOLITE_SCALING_TARGET_S
 * wall seconds (default 0.3 s) — short runs measure pool startup, not
 * throughput. Every timed configuration is preceded by a warm-up
 * epoch, and each measured sweep records its setup/run/merge phase
 * breakdown (parallel::SweepProfile) into BENCH_parallel.json.
 *
 * Gates, in order of importance:
 *  - fingerprints: parallel reports must be bit-identical to serial at
 *    every worker count — always enforced, any host;
 *  - w4 efficiency >= 60% of ideal (items/s at 4 workers >= 0.6 * 4 *
 *    serial items/s) when the host has >= 4 hardware threads;
 *  - w8 > w4 and w8 >= 3x serial when the host has >= 8.
 * GOLITE_SCALING_GATE=0 disables the two throughput gates (sanitizer
 * CI lanes serialize everything); the fingerprint gate cannot be
 * disabled. BENCH_parallel_schema.json (the structural fingerprint of
 * the JSON) is written next to the results for the CI byte-diff.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hh"
#include "bench_util.hh"
#include "corpus/bug.hh"
#include "golite/golite.hh"
#include "parallel/sweep.hh"
#include "runtime/stack_pool.hh"

using namespace golite;
using corpus::Behavior;
using corpus::BugCase;
using corpus::Variant;

namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point begin, Clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

double
envDouble(const char *name, double fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(env, &end);
    return (end != env && parsed > 0) ? parsed : fallback;
}

bool
gateEnabled()
{
    const char *env = std::getenv("GOLITE_SCALING_GATE");
    return !(env && env[0] == '0' && env[1] == '\0');
}

/**
 * The sweep under test: every reproduced blocking bug x @p seeds
 * seeds, buggy variant, this worker thread's reusable
 * waitgraph::Detector per run — the Table 8 protocol inner loop at
 * steady state (no detector construction, no scheduler construction,
 * no stack mmap on the hot path).
 */
std::vector<std::function<RunReport()>>
protocolJobs(int seeds)
{
    std::vector<std::function<RunReport()>> jobs;
    for (const BugCase *bug :
         corpus::bugsByBehavior(Behavior::Blocking, true)) {
        for (int seed = 0; seed < seeds; ++seed) {
            jobs.push_back([bug, seed] {
                waitgraph::Detector &det =
                    parallel::threadLocalWaitgraphDetector();
                RunOptions options;
                options.seed = static_cast<uint64_t>(seed);
                options.subscribers.push_back(&det);
                return bug->run(Variant::Buggy, options).report;
            });
        }
    }
    return jobs;
}

/**
 * Size the per-bug seed count so a serial pass over the jobs takes at
 * least @p target_s: time a small probe, extrapolate, clamp. Keeps
 * the bench meaningful across machines without hardcoding a seed
 * count tuned for one.
 */
int
calibrateSeeds(double target_s)
{
    constexpr int kProbeSeeds = 4;
    const auto probe = protocolJobs(kProbeSeeds);
    // One untimed pass warms code paths and arenas; the timed pass
    // then measures steady-state per-run cost.
    for (const auto &job : probe)
        (void)job();
    const auto begin = Clock::now();
    for (const auto &job : probe)
        (void)job();
    const double probe_s = seconds(begin, Clock::now());
    const double per_run = probe_s / static_cast<double>(probe.size());
    const double bugs =
        static_cast<double>(probe.size()) / kProbeSeeds;
    const double want = target_s / (per_run * bugs);
    int seeds = static_cast<int>(want) + 1;
    if (seeds < kProbeSeeds)
        seeds = kProbeSeeds;
    if (seeds > 4000)
        seeds = 4000;
    return seeds;
}

} // namespace

int
main()
{
    bench::banner(
        "Parallel scaling - multi-worker sweeps + fiber stack pool",
        "harness extension; protocol shape from Tu et al., Table 8");

    const unsigned hw = std::thread::hardware_concurrency();
    const double target_s = envDouble("GOLITE_SCALING_TARGET_S", 0.3);
    const bool gates = gateEnabled();
    std::printf("hardware threads: %u, serial target: %.2fs, "
                "throughput gates: %s\n\n",
                hw, target_s, gates ? "on" : "off");

    bench::JsonReport json;
    bool ok = true;

    // --- Calibrated workload ---------------------------------------
    const int seeds = calibrateSeeds(target_s);
    const auto jobs = protocolJobs(seeds);
    const double n = static_cast<double>(jobs.size());

    // --- Serial baseline -------------------------------------------
    std::vector<RunReport> serial_reports;
    serial_reports.reserve(jobs.size());
    // Warm-up pass, untimed — materializes a full report vector so
    // the timed pass doesn't pay first-touch allocator growth that
    // later (parallel) configurations would then inherit for free.
    for (const auto &job : jobs)
        serial_reports.push_back(job());
    serial_reports.clear();
    const auto serial_begin = Clock::now();
    for (const auto &job : jobs)
        serial_reports.push_back(job());
    const double serial_s = seconds(serial_begin, Clock::now());
    // Fingerprints are computed outside the timed window on both the
    // serial and the parallel side, so the comparison is runs-only.
    std::vector<std::string> serial_prints;
    serial_prints.reserve(serial_reports.size());
    for (const RunReport &report : serial_reports)
        serial_prints.push_back(report.fingerprint());
    const double serial_ips = n / serial_s;
    std::printf("protocol sweep: %zu runs (%zu bugs x %d seeds)\n",
                jobs.size(), jobs.size() / seeds, seeds);
    std::printf("  serial       %8.3f s  %8.0f runs/s\n", serial_s,
                serial_ips);
    json.add("protocol_sweep/serial", serial_ips, serial_s, 1);

    // --- Worker scaling, fingerprint-gated -------------------------
    double w4_ips = 0;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        parallel::SweepProfile profile;
        parallel::SweepOptions sweep;
        sweep.workers = workers;

        // Warm-up: spawn the threads, pre-size each worker's stack
        // pool and detectors, then one untimed epoch so the timed one
        // starts from steady state.
        parallel::warmSweepWorkers(sweep);
        (void)parallel::runJobs(jobs, sweep);

        sweep.profile = &profile;
        const auto begin = Clock::now();
        const auto reports = parallel::runJobs(jobs, sweep);
        const double took = seconds(begin, Clock::now());

        size_t mismatches = 0;
        for (size_t i = 0; i < reports.size(); ++i)
            if (reports[i].fingerprint() != serial_prints[i])
                mismatches++;
        const double ips = n / took;
        const double speedup = ips / serial_ips;
        const double efficiency = speedup / workers;
        if (workers == 4)
            w4_ips = ips;
        std::printf(
            "  %u worker(s)  %8.3f s  %8.0f runs/s  %.2fx vs serial "
            "(%.0f%% eff)  [setup %.4fs run %.4fs merge %.4fs]  %s\n",
            workers, took, ips, speedup, efficiency * 100,
            profile.setupSeconds, profile.runSeconds,
            profile.mergeSeconds,
            mismatches == 0 ? "reports bit-identical"
                            : "REPORTS DIVERGED");
        json.add("protocol_sweep/w" + std::to_string(workers), ips,
                 took, workers,
                 {{"setup_seconds", profile.setupSeconds},
                  {"run_seconds", profile.runSeconds},
                  {"merge_seconds", profile.mergeSeconds},
                  {"speedup_vs_serial", speedup},
                  {"efficiency", efficiency}});

        if (mismatches != 0) {
            std::printf("FAILED: %zu/%zu parallel reports differ "
                        "from serial at %u workers\n",
                        mismatches, reports.size(), workers);
            ok = false;
        }
        if (gates && workers == 4 && hw >= 4 && efficiency < 0.60) {
            std::printf("FAILED: %.0f%% efficiency at 4 workers "
                        "(want >= 60%% of ideal on >= 4 hardware "
                        "threads)\n",
                        efficiency * 100);
            ok = false;
        }
        if (gates && workers == 8 && hw >= 8) {
            if (speedup < 3.0) {
                std::printf("FAILED: %.2fx speedup at 8 workers "
                            "(want >= 3x on >= 8 hardware threads)\n",
                            speedup);
                ok = false;
            }
            if (ips <= w4_ips) {
                std::printf("FAILED: w8 (%.0f runs/s) <= w4 "
                            "(%.0f runs/s) on >= 8 hardware "
                            "threads\n",
                            ips, w4_ips);
                ok = false;
            }
        }
        if (workers == 4 && hw < 4)
            std::printf("  (efficiency gate skipped: %u hardware "
                        "threads < 4)\n",
                        hw);
        if (workers == 8 && hw < 8)
            std::printf("  (speedup gate skipped: %u hardware "
                        "threads < 8)\n",
                        hw);
    }

    // --- Stack pool A/B on the spawn/join hot path -----------------
    constexpr int kGoroutines = 500;
    constexpr int kRuns = 40;
    const auto spawn_join = [] {
        WaitGroup wg;
        wg.add(kGoroutines);
        for (int i = 0; i < kGoroutines; ++i)
            go([&wg] { wg.done(); });
        wg.wait();
    };
    const double total_spawns =
        static_cast<double>(kGoroutines) * kRuns;

    std::printf("\nstack pool A/B: %d runs x %d goroutines\n", kRuns,
                kGoroutines);
    double pool_s[2] = {0, 0};
    for (const bool pooled : {false, true}) {
        StackPool::setEnabled(pooled);
        StackPool::local().clear(); // cold start for both variants
        run(spawn_join);            // warm up code paths
        const auto begin = Clock::now();
        for (int i = 0; i < kRuns; ++i)
            run(spawn_join);
        const double took = seconds(begin, Clock::now());
        pool_s[pooled] = took;
        const auto &stats = StackPool::local().stats();
        std::printf("  pool %-3s  %8.3f s  %10.0f spawns/s  "
                    "(mapped %llu, reused %llu)\n",
                    pooled ? "on" : "off", took, total_spawns / took,
                    static_cast<unsigned long long>(stats.mapped),
                    static_cast<unsigned long long>(stats.reused));
        json.add(pooled ? "spawn_join/pool_on"
                        : "spawn_join/pool_off",
                 total_spawns / took, took, 1);
    }
    StackPool::setEnabled(true);
    std::printf("  spawn/join speedup from pooling: %.2fx\n",
                pool_s[0] / pool_s[1]);

    json.writeFile("BENCH_parallel.json");
    json.writeSchemaFile("BENCH_parallel_schema.json");
    std::printf("\nwrote BENCH_parallel.json (%zu entries) + "
                "BENCH_parallel_schema.json\n",
                json.size());
    if (!ok)
        std::printf("\nFAILED (see above)\n");
    return ok ? 0 : 1;
}
