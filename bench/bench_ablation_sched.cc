/**
 * @file
 * Ablation: scheduling policy vs bug manifestation.
 *
 * The golite scheduler's random dispatch is a design choice (it
 * models Go's scheduler nondeterminism). This ablation reruns every
 * buggy kernel under Random / FIFO / LIFO dispatch, 60 seeds each,
 * and reports the fraction of runs in which the bug manifested. The
 * expected result — random scheduling exposes far more bugs than
 * deterministic orders — is the reason the paper needed repeated
 * runs and sleep injection to reproduce bugs (Section 4).
 */

#include <cstdio>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "study/tables.hh"

using namespace golite;
using corpus::BugCase;
using corpus::Variant;

int
main()
{
    bench::banner(
        "Ablation - scheduling policy vs bug manifestation",
        "design-choice ablation (DESIGN.md); context for Section 4");

    constexpr int kSeeds = 60;
    const SchedPolicy policies[] = {SchedPolicy::Random,
                                    SchedPolicy::Fifo,
                                    SchedPolicy::Lifo,
                                    SchedPolicy::Pct};

    study::TextTable table({"policy", "kernels manifesting",
                            "mean manifestation rate"});
    for (SchedPolicy policy : policies) {
        int manifesting_kernels = 0;
        double rate_sum = 0.0;
        int kernels = 0;
        for (const BugCase &bug : corpus::corpus()) {
            int manifested = 0;
            for (int seed = 0; seed < kSeeds; ++seed) {
                RunOptions options;
                options.seed = static_cast<uint64_t>(seed);
                options.policy = policy;
                if (bug.run(Variant::Buggy, options).manifested)
                    manifested++;
            }
            kernels++;
            manifesting_kernels += manifested > 0;
            rate_sum += static_cast<double>(manifested) / kSeeds;
        }
        table.addRow(
            {schedPolicyName(policy),
             std::to_string(manifesting_kernels) + "/" +
                 std::to_string(kernels),
             study::TextTable::num(100.0 * rate_sum / kernels, 1) +
                 "%"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Expected shape: fully randomized dispatch exposes the most\n"
        "kernels; deterministic orders (FIFO/LIFO) hide\n"
        "interleaving-dependent bugs, as single-schedule testing\n"
        "does in practice. PCT lands between them here: its handful\n"
        "of priority-change points is a good fit for deep rare bugs\n"
        "but spends no randomness at the per-yield windows these\n"
        "kernels expose.\n");
    return 0;
}
