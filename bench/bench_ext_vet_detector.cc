/**
 * @file
 * Extension experiment: golite-vet vs the built-in detector on the
 * reproduced blocking bugs.
 *
 * The paper's Implication 4: "Simple runtime deadlock detector is not
 * effective in detecting Go blocking bugs. Future research should
 * focus on building novel blocking bug detection techniques, for
 * example, with a combination of static and dynamic blocking pattern
 * detection." golite-vet is that follow-up, built directly from the
 * study's blocking-bug patterns. This bench runs the Table 8
 * protocol (plus a 40-seed sweep, since pattern checkers can fire on
 * non-deadlocking schedules too) with three detectors side by side:
 *
 *   built-in   - the global all-asleep check (what Go ships);
 *   leak       - the end-of-run goroutine leak report;
 *   vet        - the four pattern rules (double lock, lock-order
 *                cycle, recursive RLock, WaitGroup misuse).
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "corpus/bug.hh"
#include "study/tables.hh"
#include "vet/vet.hh"

using namespace golite;
using corpus::Behavior;
using corpus::BugCase;
using corpus::SubCause;
using corpus::Variant;

int
main()
{
    bench::banner(
        "Extension - golite-vet blocking-pattern detector",
        "Implication 4 / Section 7 follow-up (not a paper table)");

    struct Row
    {
        int used = 0;
        int builtin = 0;
        int leak = 0;
        int vetHits = 0;
    };
    std::map<SubCause, Row> rows;
    Row total;

    std::printf("%-18s %-9s %-9s %-6s %s\n", "bug", "cause",
                "built-in", "leak", "vet");
    std::printf("%s\n", std::string(70, '-').c_str());
    for (const BugCase &bug : corpus::corpus()) {
        if (bug.info.behavior != Behavior::Blocking)
            continue;
        bool builtin = false, leak = false, vet_hit = false;
        std::string vet_rule = "-";
        for (uint64_t seed = 0; seed < 40; ++seed) {
            vet::BlockingVet checker;
            RunOptions options;
            options.seed = seed;
            options.subscribers.push_back(&checker);
            auto outcome = bug.run(Variant::Buggy, options);
            builtin |= outcome.report.globalDeadlock;
            leak |= !outcome.report.leaked.empty();
            if (!checker.reports().empty()) {
                vet_hit = true;
                vet_rule =
                    vet::ruleKindName(checker.reports()[0].kind);
            }
        }
        Row &row = rows[bug.info.subcause];
        row.used++;
        row.builtin += builtin;
        row.leak += leak;
        row.vetHits += vet_hit;
        total.used++;
        total.builtin += builtin;
        total.leak += leak;
        total.vetHits += vet_hit;
        std::printf("%-18s %-9s %-9s %-6s %s\n", bug.info.id.c_str(),
                    corpus::subCauseName(bug.info.subcause),
                    builtin ? "yes" : "-", leak ? "yes" : "-",
                    vet_hit ? vet_rule.c_str() : "-");
    }

    std::printf("\n");
    study::TextTable table({"Root Cause", "Used", "built-in", "leak",
                            "vet"});
    const SubCause order[] = {SubCause::Mutex, SubCause::RWMutex,
                              SubCause::Wait, SubCause::Chan,
                              SubCause::ChanWithOther,
                              SubCause::MessagingLibrary};
    for (SubCause cause : order) {
        const Row &row = rows[cause];
        table.addRow({corpus::subCauseName(cause),
                      std::to_string(row.used),
                      std::to_string(row.builtin),
                      std::to_string(row.leak),
                      std::to_string(row.vetHits)});
    }
    table.addRow({"Total", std::to_string(total.used),
                  std::to_string(total.builtin),
                  std::to_string(total.leak),
                  std::to_string(total.vetHits)});
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Expected shape: vet catches the shared-memory blocking\n"
        "patterns (double locks, AB-BA, recursive RLock) that the\n"
        "built-in detector misses - including on *non-deadlocking*\n"
        "schedules - while pure channel bugs remain out of reach of\n"
        "lock-pattern analysis, exactly the gap Section 7 says needs\n"
        "new message-passing-aware techniques. Zero vet reports on\n"
        "fixed variants (see tests/vet_test.cc).\n");
    return 0;
}
