# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("runtime")
subdirs("channel")
subdirs("sync")
subdirs("gotime")
subdirs("context")
subdirs("goio")
subdirs("race")
subdirs("vet")
subdirs("explore")
subdirs("corpus")
subdirs("study")
subdirs("scanner")
subdirs("rpcbench")
