file(REMOVE_RECURSE
  "CMakeFiles/golite_runtime.dir/fiber.cc.o"
  "CMakeFiles/golite_runtime.dir/fiber.cc.o.d"
  "CMakeFiles/golite_runtime.dir/report.cc.o"
  "CMakeFiles/golite_runtime.dir/report.cc.o.d"
  "CMakeFiles/golite_runtime.dir/scheduler.cc.o"
  "CMakeFiles/golite_runtime.dir/scheduler.cc.o.d"
  "libgolite_runtime.a"
  "libgolite_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
