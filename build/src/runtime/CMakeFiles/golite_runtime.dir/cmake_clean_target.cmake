file(REMOVE_RECURSE
  "libgolite_runtime.a"
)
