# Empty compiler generated dependencies file for golite_runtime.
# This may be replaced when dependencies are built.
