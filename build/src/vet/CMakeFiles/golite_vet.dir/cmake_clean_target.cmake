file(REMOVE_RECURSE
  "libgolite_vet.a"
)
