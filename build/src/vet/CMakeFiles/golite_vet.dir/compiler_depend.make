# Empty compiler generated dependencies file for golite_vet.
# This may be replaced when dependencies are built.
