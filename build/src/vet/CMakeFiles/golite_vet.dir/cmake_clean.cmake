file(REMOVE_RECURSE
  "CMakeFiles/golite_vet.dir/vet.cc.o"
  "CMakeFiles/golite_vet.dir/vet.cc.o.d"
  "libgolite_vet.a"
  "libgolite_vet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_vet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
