# Empty compiler generated dependencies file for golite_race.
# This may be replaced when dependencies are built.
