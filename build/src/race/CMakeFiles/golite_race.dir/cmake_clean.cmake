file(REMOVE_RECURSE
  "CMakeFiles/golite_race.dir/detector.cc.o"
  "CMakeFiles/golite_race.dir/detector.cc.o.d"
  "libgolite_race.a"
  "libgolite_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
