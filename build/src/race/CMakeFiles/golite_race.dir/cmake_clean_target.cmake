file(REMOVE_RECURSE
  "libgolite_race.a"
)
