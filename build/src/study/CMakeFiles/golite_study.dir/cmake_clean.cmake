file(REMOVE_RECURSE
  "CMakeFiles/golite_study.dir/database.cc.o"
  "CMakeFiles/golite_study.dir/database.cc.o.d"
  "CMakeFiles/golite_study.dir/stats.cc.o"
  "CMakeFiles/golite_study.dir/stats.cc.o.d"
  "CMakeFiles/golite_study.dir/tables.cc.o"
  "CMakeFiles/golite_study.dir/tables.cc.o.d"
  "libgolite_study.a"
  "libgolite_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
