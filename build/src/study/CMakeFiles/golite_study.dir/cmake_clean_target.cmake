file(REMOVE_RECURSE
  "libgolite_study.a"
)
