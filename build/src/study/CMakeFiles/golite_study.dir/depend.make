# Empty dependencies file for golite_study.
# This may be replaced when dependencies are built.
