file(REMOVE_RECURSE
  "CMakeFiles/golite_sync.dir/cond.cc.o"
  "CMakeFiles/golite_sync.dir/cond.cc.o.d"
  "CMakeFiles/golite_sync.dir/mutex.cc.o"
  "CMakeFiles/golite_sync.dir/mutex.cc.o.d"
  "CMakeFiles/golite_sync.dir/once.cc.o"
  "CMakeFiles/golite_sync.dir/once.cc.o.d"
  "CMakeFiles/golite_sync.dir/rwmutex.cc.o"
  "CMakeFiles/golite_sync.dir/rwmutex.cc.o.d"
  "CMakeFiles/golite_sync.dir/waitgroup.cc.o"
  "CMakeFiles/golite_sync.dir/waitgroup.cc.o.d"
  "libgolite_sync.a"
  "libgolite_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
