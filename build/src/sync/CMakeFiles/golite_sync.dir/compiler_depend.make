# Empty compiler generated dependencies file for golite_sync.
# This may be replaced when dependencies are built.
