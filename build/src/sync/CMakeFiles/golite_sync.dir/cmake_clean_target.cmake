file(REMOVE_RECURSE
  "libgolite_sync.a"
)
