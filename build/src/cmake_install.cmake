# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/base/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/runtime/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/channel/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sync/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/gotime/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/context/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/goio/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/race/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/vet/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/explore/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/corpus/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/study/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/scanner/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/rpcbench/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/base/libgolite_base.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/runtime/libgolite_runtime.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/channel/libgolite_channel.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sync/libgolite_sync.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/gotime/libgolite_gotime.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/context/libgolite_context.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/goio/libgolite_goio.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/race/libgolite_race.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/vet/libgolite_vet.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/explore/libgolite_explore.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/corpus/libgolite_corpus.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/study/libgolite_study.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/scanner/libgolite_scanner.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/rpcbench/libgolite_rpcbench.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/golite" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hh$")
endif()

