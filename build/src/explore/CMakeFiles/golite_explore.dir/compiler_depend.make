# Empty compiler generated dependencies file for golite_explore.
# This may be replaced when dependencies are built.
