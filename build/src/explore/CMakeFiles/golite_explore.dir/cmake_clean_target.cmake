file(REMOVE_RECURSE
  "libgolite_explore.a"
)
