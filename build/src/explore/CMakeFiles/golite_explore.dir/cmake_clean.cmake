file(REMOVE_RECURSE
  "CMakeFiles/golite_explore.dir/explorer.cc.o"
  "CMakeFiles/golite_explore.dir/explorer.cc.o.d"
  "libgolite_explore.a"
  "libgolite_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
