file(REMOVE_RECURSE
  "CMakeFiles/golite_context.dir/context.cc.o"
  "CMakeFiles/golite_context.dir/context.cc.o.d"
  "libgolite_context.a"
  "libgolite_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
