# Empty dependencies file for golite_context.
# This may be replaced when dependencies are built.
