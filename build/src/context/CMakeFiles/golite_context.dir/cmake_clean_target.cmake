file(REMOVE_RECURSE
  "libgolite_context.a"
)
