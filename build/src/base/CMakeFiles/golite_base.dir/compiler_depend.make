# Empty compiler generated dependencies file for golite_base.
# This may be replaced when dependencies are built.
