file(REMOVE_RECURSE
  "CMakeFiles/golite_base.dir/panic.cc.o"
  "CMakeFiles/golite_base.dir/panic.cc.o.d"
  "CMakeFiles/golite_base.dir/rng.cc.o"
  "CMakeFiles/golite_base.dir/rng.cc.o.d"
  "libgolite_base.a"
  "libgolite_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
