file(REMOVE_RECURSE
  "libgolite_base.a"
)
