file(REMOVE_RECURSE
  "libgolite_rpcbench.a"
)
