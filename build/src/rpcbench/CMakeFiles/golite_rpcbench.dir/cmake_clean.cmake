file(REMOVE_RECURSE
  "CMakeFiles/golite_rpcbench.dir/rpc.cc.o"
  "CMakeFiles/golite_rpcbench.dir/rpc.cc.o.d"
  "libgolite_rpcbench.a"
  "libgolite_rpcbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_rpcbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
