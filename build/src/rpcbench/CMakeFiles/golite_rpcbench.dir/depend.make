# Empty dependencies file for golite_rpcbench.
# This may be replaced when dependencies are built.
