
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/goio/pipe.cc" "src/goio/CMakeFiles/golite_goio.dir/pipe.cc.o" "gcc" "src/goio/CMakeFiles/golite_goio.dir/pipe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/golite_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/golite_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
