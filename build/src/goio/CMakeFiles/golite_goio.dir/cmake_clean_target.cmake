file(REMOVE_RECURSE
  "libgolite_goio.a"
)
