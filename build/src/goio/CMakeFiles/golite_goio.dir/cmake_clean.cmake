file(REMOVE_RECURSE
  "CMakeFiles/golite_goio.dir/pipe.cc.o"
  "CMakeFiles/golite_goio.dir/pipe.cc.o.d"
  "libgolite_goio.a"
  "libgolite_goio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_goio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
