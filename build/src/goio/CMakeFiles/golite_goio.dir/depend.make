# Empty dependencies file for golite_goio.
# This may be replaced when dependencies are built.
