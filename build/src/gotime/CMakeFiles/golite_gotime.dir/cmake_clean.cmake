file(REMOVE_RECURSE
  "CMakeFiles/golite_gotime.dir/time.cc.o"
  "CMakeFiles/golite_gotime.dir/time.cc.o.d"
  "libgolite_gotime.a"
  "libgolite_gotime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_gotime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
