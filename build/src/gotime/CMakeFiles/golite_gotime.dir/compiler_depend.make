# Empty compiler generated dependencies file for golite_gotime.
# This may be replaced when dependencies are built.
