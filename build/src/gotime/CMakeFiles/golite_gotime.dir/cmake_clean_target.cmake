file(REMOVE_RECURSE
  "libgolite_gotime.a"
)
