file(REMOVE_RECURSE
  "libgolite_channel.a"
)
