file(REMOVE_RECURSE
  "CMakeFiles/golite_channel.dir/select.cc.o"
  "CMakeFiles/golite_channel.dir/select.cc.o.d"
  "libgolite_channel.a"
  "libgolite_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
