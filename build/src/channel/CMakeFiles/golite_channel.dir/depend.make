# Empty dependencies file for golite_channel.
# This may be replaced when dependencies are built.
