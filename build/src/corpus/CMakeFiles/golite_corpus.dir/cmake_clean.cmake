file(REMOVE_RECURSE
  "CMakeFiles/golite_corpus.dir/blocking_channel.cc.o"
  "CMakeFiles/golite_corpus.dir/blocking_channel.cc.o.d"
  "CMakeFiles/golite_corpus.dir/blocking_library.cc.o"
  "CMakeFiles/golite_corpus.dir/blocking_library.cc.o.d"
  "CMakeFiles/golite_corpus.dir/blocking_mixed.cc.o"
  "CMakeFiles/golite_corpus.dir/blocking_mixed.cc.o.d"
  "CMakeFiles/golite_corpus.dir/blocking_mutex.cc.o"
  "CMakeFiles/golite_corpus.dir/blocking_mutex.cc.o.d"
  "CMakeFiles/golite_corpus.dir/blocking_rwmutex_wait.cc.o"
  "CMakeFiles/golite_corpus.dir/blocking_rwmutex_wait.cc.o.d"
  "CMakeFiles/golite_corpus.dir/extended.cc.o"
  "CMakeFiles/golite_corpus.dir/extended.cc.o.d"
  "CMakeFiles/golite_corpus.dir/extended2.cc.o"
  "CMakeFiles/golite_corpus.dir/extended2.cc.o.d"
  "CMakeFiles/golite_corpus.dir/nonblocking_anonymous.cc.o"
  "CMakeFiles/golite_corpus.dir/nonblocking_anonymous.cc.o.d"
  "CMakeFiles/golite_corpus.dir/nonblocking_misc.cc.o"
  "CMakeFiles/golite_corpus.dir/nonblocking_misc.cc.o.d"
  "CMakeFiles/golite_corpus.dir/nonblocking_traditional.cc.o"
  "CMakeFiles/golite_corpus.dir/nonblocking_traditional.cc.o.d"
  "CMakeFiles/golite_corpus.dir/registry.cc.o"
  "CMakeFiles/golite_corpus.dir/registry.cc.o.d"
  "libgolite_corpus.a"
  "libgolite_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
