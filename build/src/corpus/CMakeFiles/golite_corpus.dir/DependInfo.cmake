
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/blocking_channel.cc" "src/corpus/CMakeFiles/golite_corpus.dir/blocking_channel.cc.o" "gcc" "src/corpus/CMakeFiles/golite_corpus.dir/blocking_channel.cc.o.d"
  "/root/repo/src/corpus/blocking_library.cc" "src/corpus/CMakeFiles/golite_corpus.dir/blocking_library.cc.o" "gcc" "src/corpus/CMakeFiles/golite_corpus.dir/blocking_library.cc.o.d"
  "/root/repo/src/corpus/blocking_mixed.cc" "src/corpus/CMakeFiles/golite_corpus.dir/blocking_mixed.cc.o" "gcc" "src/corpus/CMakeFiles/golite_corpus.dir/blocking_mixed.cc.o.d"
  "/root/repo/src/corpus/blocking_mutex.cc" "src/corpus/CMakeFiles/golite_corpus.dir/blocking_mutex.cc.o" "gcc" "src/corpus/CMakeFiles/golite_corpus.dir/blocking_mutex.cc.o.d"
  "/root/repo/src/corpus/blocking_rwmutex_wait.cc" "src/corpus/CMakeFiles/golite_corpus.dir/blocking_rwmutex_wait.cc.o" "gcc" "src/corpus/CMakeFiles/golite_corpus.dir/blocking_rwmutex_wait.cc.o.d"
  "/root/repo/src/corpus/extended.cc" "src/corpus/CMakeFiles/golite_corpus.dir/extended.cc.o" "gcc" "src/corpus/CMakeFiles/golite_corpus.dir/extended.cc.o.d"
  "/root/repo/src/corpus/extended2.cc" "src/corpus/CMakeFiles/golite_corpus.dir/extended2.cc.o" "gcc" "src/corpus/CMakeFiles/golite_corpus.dir/extended2.cc.o.d"
  "/root/repo/src/corpus/nonblocking_anonymous.cc" "src/corpus/CMakeFiles/golite_corpus.dir/nonblocking_anonymous.cc.o" "gcc" "src/corpus/CMakeFiles/golite_corpus.dir/nonblocking_anonymous.cc.o.d"
  "/root/repo/src/corpus/nonblocking_misc.cc" "src/corpus/CMakeFiles/golite_corpus.dir/nonblocking_misc.cc.o" "gcc" "src/corpus/CMakeFiles/golite_corpus.dir/nonblocking_misc.cc.o.d"
  "/root/repo/src/corpus/nonblocking_traditional.cc" "src/corpus/CMakeFiles/golite_corpus.dir/nonblocking_traditional.cc.o" "gcc" "src/corpus/CMakeFiles/golite_corpus.dir/nonblocking_traditional.cc.o.d"
  "/root/repo/src/corpus/registry.cc" "src/corpus/CMakeFiles/golite_corpus.dir/registry.cc.o" "gcc" "src/corpus/CMakeFiles/golite_corpus.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/golite_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/golite_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/golite_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/gotime/CMakeFiles/golite_gotime.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/golite_context.dir/DependInfo.cmake"
  "/root/repo/build/src/goio/CMakeFiles/golite_goio.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/golite_race.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/golite_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
