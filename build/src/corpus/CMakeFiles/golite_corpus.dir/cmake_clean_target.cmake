file(REMOVE_RECURSE
  "libgolite_corpus.a"
)
