# Empty compiler generated dependencies file for golite_corpus.
# This may be replaced when dependencies are built.
