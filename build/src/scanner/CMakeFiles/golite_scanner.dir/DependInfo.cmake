
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scanner/counter.cc" "src/scanner/CMakeFiles/golite_scanner.dir/counter.cc.o" "gcc" "src/scanner/CMakeFiles/golite_scanner.dir/counter.cc.o.d"
  "/root/repo/src/scanner/generator.cc" "src/scanner/CMakeFiles/golite_scanner.dir/generator.cc.o" "gcc" "src/scanner/CMakeFiles/golite_scanner.dir/generator.cc.o.d"
  "/root/repo/src/scanner/lexer.cc" "src/scanner/CMakeFiles/golite_scanner.dir/lexer.cc.o" "gcc" "src/scanner/CMakeFiles/golite_scanner.dir/lexer.cc.o.d"
  "/root/repo/src/scanner/lint.cc" "src/scanner/CMakeFiles/golite_scanner.dir/lint.cc.o" "gcc" "src/scanner/CMakeFiles/golite_scanner.dir/lint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/golite_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
