# Empty compiler generated dependencies file for golite_scanner.
# This may be replaced when dependencies are built.
