file(REMOVE_RECURSE
  "libgolite_scanner.a"
)
