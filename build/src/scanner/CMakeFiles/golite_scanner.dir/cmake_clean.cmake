file(REMOVE_RECURSE
  "CMakeFiles/golite_scanner.dir/counter.cc.o"
  "CMakeFiles/golite_scanner.dir/counter.cc.o.d"
  "CMakeFiles/golite_scanner.dir/generator.cc.o"
  "CMakeFiles/golite_scanner.dir/generator.cc.o.d"
  "CMakeFiles/golite_scanner.dir/lexer.cc.o"
  "CMakeFiles/golite_scanner.dir/lexer.cc.o.d"
  "CMakeFiles/golite_scanner.dir/lint.cc.o"
  "CMakeFiles/golite_scanner.dir/lint.cc.o.d"
  "libgolite_scanner.a"
  "libgolite_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golite_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
