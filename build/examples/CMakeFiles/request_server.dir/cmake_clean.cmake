file(REMOVE_RECURSE
  "CMakeFiles/request_server.dir/request_server.cpp.o"
  "CMakeFiles/request_server.dir/request_server.cpp.o.d"
  "request_server"
  "request_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
