# Empty dependencies file for request_server.
# This may be replaced when dependencies are built.
