# Empty dependencies file for bug_detective.
# This may be replaced when dependencies are built.
