file(REMOVE_RECURSE
  "CMakeFiles/bug_detective.dir/bug_detective.cpp.o"
  "CMakeFiles/bug_detective.dir/bug_detective.cpp.o.d"
  "bug_detective"
  "bug_detective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bug_detective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
