# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_request_server "/root/repo/build/examples/request_server")
set_tests_properties(example_request_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bug_detective "/root/repo/build/examples/bug_detective")
set_tests_properties(example_bug_detective PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline "/root/repo/build/examples/pipeline")
set_tests_properties(example_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
