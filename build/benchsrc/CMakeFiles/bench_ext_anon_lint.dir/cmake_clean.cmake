file(REMOVE_RECURSE
  "../bench/bench_ext_anon_lint"
  "../bench/bench_ext_anon_lint.pdb"
  "CMakeFiles/bench_ext_anon_lint.dir/bench_ext_anon_lint.cc.o"
  "CMakeFiles/bench_ext_anon_lint.dir/bench_ext_anon_lint.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_anon_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
