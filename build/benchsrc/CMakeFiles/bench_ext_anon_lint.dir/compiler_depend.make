# Empty compiler generated dependencies file for bench_ext_anon_lint.
# This may be replaced when dependencies are built.
