file(REMOVE_RECURSE
  "../bench/bench_table02_goroutines"
  "../bench/bench_table02_goroutines.pdb"
  "CMakeFiles/bench_table02_goroutines.dir/bench_table02_goroutines.cc.o"
  "CMakeFiles/bench_table02_goroutines.dir/bench_table02_goroutines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_goroutines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
