# Empty compiler generated dependencies file for bench_table02_goroutines.
# This may be replaced when dependencies are built.
