# Empty dependencies file for bench_table05_taxonomy.
# This may be replaced when dependencies are built.
