file(REMOVE_RECURSE
  "../bench/bench_observations"
  "../bench/bench_observations.pdb"
  "CMakeFiles/bench_observations.dir/bench_observations.cc.o"
  "CMakeFiles/bench_observations.dir/bench_observations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_observations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
