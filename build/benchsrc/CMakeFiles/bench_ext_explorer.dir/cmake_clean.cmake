file(REMOVE_RECURSE
  "../bench/bench_ext_explorer"
  "../bench/bench_ext_explorer.pdb"
  "CMakeFiles/bench_ext_explorer.dir/bench_ext_explorer.cc.o"
  "CMakeFiles/bench_ext_explorer.dir/bench_ext_explorer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
