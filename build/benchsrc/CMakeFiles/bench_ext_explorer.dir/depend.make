# Empty dependencies file for bench_ext_explorer.
# This may be replaced when dependencies are built.
