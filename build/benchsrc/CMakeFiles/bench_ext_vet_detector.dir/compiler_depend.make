# Empty compiler generated dependencies file for bench_ext_vet_detector.
# This may be replaced when dependencies are built.
