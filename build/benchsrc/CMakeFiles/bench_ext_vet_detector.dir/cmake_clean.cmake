file(REMOVE_RECURSE
  "../bench/bench_ext_vet_detector"
  "../bench/bench_ext_vet_detector.pdb"
  "CMakeFiles/bench_ext_vet_detector.dir/bench_ext_vet_detector.cc.o"
  "CMakeFiles/bench_ext_vet_detector.dir/bench_ext_vet_detector.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_vet_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
