file(REMOVE_RECURSE
  "../bench/bench_fig04_lifetime"
  "../bench/bench_fig04_lifetime.pdb"
  "CMakeFiles/bench_fig04_lifetime.dir/bench_fig04_lifetime.cc.o"
  "CMakeFiles/bench_fig04_lifetime.dir/bench_fig04_lifetime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
