file(REMOVE_RECURSE
  "../bench/bench_table10_nonblocking_fixes"
  "../bench/bench_table10_nonblocking_fixes.pdb"
  "CMakeFiles/bench_table10_nonblocking_fixes.dir/bench_table10_nonblocking_fixes.cc.o"
  "CMakeFiles/bench_table10_nonblocking_fixes.dir/bench_table10_nonblocking_fixes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_nonblocking_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
