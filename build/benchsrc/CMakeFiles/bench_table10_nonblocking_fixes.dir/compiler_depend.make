# Empty compiler generated dependencies file for bench_table10_nonblocking_fixes.
# This may be replaced when dependencies are built.
