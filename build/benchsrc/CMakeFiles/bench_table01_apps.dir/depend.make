# Empty dependencies file for bench_table01_apps.
# This may be replaced when dependencies are built.
