# Empty dependencies file for bench_perf_runtime.
# This may be replaced when dependencies are built.
