file(REMOVE_RECURSE
  "../bench/bench_perf_runtime"
  "../bench/bench_perf_runtime.pdb"
  "CMakeFiles/bench_perf_runtime.dir/bench_perf_runtime.cc.o"
  "CMakeFiles/bench_perf_runtime.dir/bench_perf_runtime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
