# Empty compiler generated dependencies file for bench_table06_blocking_causes.
# This may be replaced when dependencies are built.
