# Empty compiler generated dependencies file for bench_fig02_03_usage_over_time.
# This may be replaced when dependencies are built.
