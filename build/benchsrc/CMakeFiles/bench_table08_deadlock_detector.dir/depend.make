# Empty dependencies file for bench_table08_deadlock_detector.
# This may be replaced when dependencies are built.
