file(REMOVE_RECURSE
  "../bench/bench_table08_deadlock_detector"
  "../bench/bench_table08_deadlock_detector.pdb"
  "CMakeFiles/bench_table08_deadlock_detector.dir/bench_table08_deadlock_detector.cc.o"
  "CMakeFiles/bench_table08_deadlock_detector.dir/bench_table08_deadlock_detector.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_deadlock_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
