file(REMOVE_RECURSE
  "../bench/bench_table09_nonblocking_causes"
  "../bench/bench_table09_nonblocking_causes.pdb"
  "CMakeFiles/bench_table09_nonblocking_causes.dir/bench_table09_nonblocking_causes.cc.o"
  "CMakeFiles/bench_table09_nonblocking_causes.dir/bench_table09_nonblocking_causes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table09_nonblocking_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
