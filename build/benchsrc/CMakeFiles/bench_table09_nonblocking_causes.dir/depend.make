# Empty dependencies file for bench_table09_nonblocking_causes.
# This may be replaced when dependencies are built.
