file(REMOVE_RECURSE
  "../bench/bench_table03_dynamic"
  "../bench/bench_table03_dynamic.pdb"
  "CMakeFiles/bench_table03_dynamic.dir/bench_table03_dynamic.cc.o"
  "CMakeFiles/bench_table03_dynamic.dir/bench_table03_dynamic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
