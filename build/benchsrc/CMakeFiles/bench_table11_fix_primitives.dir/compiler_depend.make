# Empty compiler generated dependencies file for bench_table11_fix_primitives.
# This may be replaced when dependencies are built.
