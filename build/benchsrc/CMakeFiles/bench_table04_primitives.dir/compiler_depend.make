# Empty compiler generated dependencies file for bench_table04_primitives.
# This may be replaced when dependencies are built.
