file(REMOVE_RECURSE
  "../bench/bench_table04_primitives"
  "../bench/bench_table04_primitives.pdb"
  "CMakeFiles/bench_table04_primitives.dir/bench_table04_primitives.cc.o"
  "CMakeFiles/bench_table04_primitives.dir/bench_table04_primitives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
