
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_shadow.cc" "benchsrc/CMakeFiles/bench_ablation_shadow.dir/bench_ablation_shadow.cc.o" "gcc" "benchsrc/CMakeFiles/bench_ablation_shadow.dir/bench_ablation_shadow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vet/CMakeFiles/golite_vet.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/golite_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/study/CMakeFiles/golite_study.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/golite_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/golite_context.dir/DependInfo.cmake"
  "/root/repo/build/src/gotime/CMakeFiles/golite_gotime.dir/DependInfo.cmake"
  "/root/repo/build/src/goio/CMakeFiles/golite_goio.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/golite_race.dir/DependInfo.cmake"
  "/root/repo/build/src/scanner/CMakeFiles/golite_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/rpcbench/CMakeFiles/golite_rpcbench.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/golite_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/golite_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/golite_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/golite_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
