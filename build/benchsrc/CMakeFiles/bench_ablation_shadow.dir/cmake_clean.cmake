file(REMOVE_RECURSE
  "../bench/bench_ablation_shadow"
  "../bench/bench_ablation_shadow.pdb"
  "CMakeFiles/bench_ablation_shadow.dir/bench_ablation_shadow.cc.o"
  "CMakeFiles/bench_ablation_shadow.dir/bench_ablation_shadow.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
