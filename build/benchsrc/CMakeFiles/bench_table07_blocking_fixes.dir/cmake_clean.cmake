file(REMOVE_RECURSE
  "../bench/bench_table07_blocking_fixes"
  "../bench/bench_table07_blocking_fixes.pdb"
  "CMakeFiles/bench_table07_blocking_fixes.dir/bench_table07_blocking_fixes.cc.o"
  "CMakeFiles/bench_table07_blocking_fixes.dir/bench_table07_blocking_fixes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_blocking_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
