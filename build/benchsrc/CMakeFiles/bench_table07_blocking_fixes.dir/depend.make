# Empty dependencies file for bench_table07_blocking_fixes.
# This may be replaced when dependencies are built.
