file(REMOVE_RECURSE
  "../bench/bench_table12_race_detector"
  "../bench/bench_table12_race_detector.pdb"
  "CMakeFiles/bench_table12_race_detector.dir/bench_table12_race_detector.cc.o"
  "CMakeFiles/bench_table12_race_detector.dir/bench_table12_race_detector.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_race_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
