# Empty dependencies file for bench_table12_race_detector.
# This may be replaced when dependencies are built.
