file(REMOVE_RECURSE
  "CMakeFiles/test_goio.dir/goio_test.cc.o"
  "CMakeFiles/test_goio.dir/goio_test.cc.o.d"
  "test_goio"
  "test_goio.pdb"
  "test_goio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_goio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
