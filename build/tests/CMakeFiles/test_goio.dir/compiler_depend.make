# Empty compiler generated dependencies file for test_goio.
# This may be replaced when dependencies are built.
