file(REMOVE_RECURSE
  "CMakeFiles/test_gotime.dir/gotime_test.cc.o"
  "CMakeFiles/test_gotime.dir/gotime_test.cc.o.d"
  "test_gotime"
  "test_gotime.pdb"
  "test_gotime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gotime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
