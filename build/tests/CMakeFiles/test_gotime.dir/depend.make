# Empty dependencies file for test_gotime.
# This may be replaced when dependencies are built.
