file(REMOVE_RECURSE
  "CMakeFiles/test_vet.dir/vet_test.cc.o"
  "CMakeFiles/test_vet.dir/vet_test.cc.o.d"
  "test_vet"
  "test_vet.pdb"
  "test_vet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
