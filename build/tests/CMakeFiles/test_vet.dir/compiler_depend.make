# Empty compiler generated dependencies file for test_vet.
# This may be replaced when dependencies are built.
