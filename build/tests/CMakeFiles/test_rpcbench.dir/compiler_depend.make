# Empty compiler generated dependencies file for test_rpcbench.
# This may be replaced when dependencies are built.
