file(REMOVE_RECURSE
  "CMakeFiles/test_rpcbench.dir/rpcbench_test.cc.o"
  "CMakeFiles/test_rpcbench.dir/rpcbench_test.cc.o.d"
  "test_rpcbench"
  "test_rpcbench.pdb"
  "test_rpcbench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpcbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
