# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_select[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_gotime[1]_include.cmake")
include("/root/repo/build/tests/test_context[1]_include.cmake")
include("/root/repo/build/tests/test_goio[1]_include.cmake")
include("/root/repo/build/tests/test_race[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
include("/root/repo/build/tests/test_scanner[1]_include.cmake")
include("/root/repo/build/tests/test_rpcbench[1]_include.cmake")
include("/root/repo/build/tests/test_vet[1]_include.cmake")
include("/root/repo/build/tests/test_stdlib[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_lint[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
